// Unit tests for the task-graph executor (src/exec): structural validation
// of emitted graphs, engine-lane serialization, priority dispatch, and the
// critical-path report.

#include "exec/executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "exec/task_graph.h"
#include "obs/metrics.h"
#include "topo/systems.h"
#include "vgpu/platform.h"

namespace mgs::exec {
namespace {

std::unique_ptr<vgpu::Platform> MakePlatform() {
  return CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
}

/// Simulated-time interval a node body occupied.
struct Span {
  double start = -1;
  double end = -1;

  bool Overlaps(const Span& other) const {
    return start < other.end && other.start < end;
  }
};

sim::Task<void> TimedBody(sim::Simulator* sim, double seconds, Span* span) {
  span->start = sim->Now();
  co_await sim::Delay{*sim, seconds};
  span->end = sim->Now();
}

/// Node body factory: occupies `seconds` of simulated time, records when.
std::function<sim::Task<void>()> Body(vgpu::Platform* platform, double seconds,
                                      Span* span) {
  sim::Simulator* sim = &platform->simulator();
  return [sim, seconds, span] { return TimedBody(sim, seconds, span); };
}

/// Spawns every (graph, options, report) tuple onto one executor at t=0 and
/// waits for all of them — how the sort server drives concurrent tenants.
struct JobSubmission {
  TaskGraph graph;
  GraphJobOptions options;
  ExecReport* report = nullptr;
};

sim::Task<void> RunJobs(GraphExecutor* executor,
                        std::vector<JobSubmission> jobs) {
  std::vector<sim::JoinerPtr> joiners;
  for (auto& job : jobs) {
    joiners.push_back(sim::Spawn(
        executor->Run(std::move(job.graph), job.options, job.report)));
  }
  co_await sim::WhenAll(std::move(joiners));
}

// ---------------------------------------------------------------------------
// TaskGraph::Validate
// ---------------------------------------------------------------------------

TEST(TaskGraphTest, ValidatesLinearChain) {
  TaskGraph graph;
  NodeId a = graph.AddNode(NodeKind::kHtoDCopy, 0, nullptr, "a");
  NodeId b = graph.AddNode(NodeKind::kChunkSort, 0, nullptr, "b");
  NodeId c = graph.AddNode(NodeKind::kDtoHCopy, 0, nullptr, "c");
  graph.AddEdge(a, b);
  graph.AddEdge(b, c);
  EXPECT_TRUE(graph.Validate().ok());
  EXPECT_EQ(graph.num_nodes(), 3);
}

TEST(TaskGraphTest, RejectsCycle) {
  TaskGraph graph;
  NodeId a = graph.AddNode(NodeKind::kChunkSort, 0, nullptr, "a");
  NodeId b = graph.AddNode(NodeKind::kMergeStep, 0, nullptr, "b");
  graph.AddEdge(a, b);
  graph.AddEdge(b, a);
  EXPECT_EQ(graph.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(TaskGraphTest, RejectsSelfEdge) {
  TaskGraph graph;
  NodeId a = graph.AddNode(NodeKind::kChunkSort, 0, nullptr, "a");
  graph.AddEdge(a, a);
  EXPECT_EQ(graph.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(TaskGraphTest, RejectsConsumeWithoutProducer) {
  TaskGraph graph;
  NodeId a = graph.AddNode(NodeKind::kChunkSort, 0, nullptr, "a");
  graph.Consumes(a, 42);
  EXPECT_EQ(graph.Validate().code(), StatusCode::kInvalidArgument);

  // Declaring the token as an external graph input makes it legal.
  graph.AddInput(42);
  EXPECT_TRUE(graph.Validate().ok());
}

TEST(TaskGraphTest, RejectsProducerThatIsNotAnAncestor) {
  TaskGraph graph;
  NodeId producer = graph.AddNode(NodeKind::kChunkSort, 0, nullptr, "p");
  NodeId consumer = graph.AddNode(NodeKind::kMergeStep, 0, nullptr, "c");
  graph.Produces(producer, 7);
  graph.Consumes(consumer, 7);
  // Produced somewhere in the graph, but nothing orders it before the
  // consumer — the executor could legally run the consumer first.
  EXPECT_EQ(graph.Validate().code(), StatusCode::kInvalidArgument);

  graph.AddEdge(producer, consumer);
  EXPECT_TRUE(graph.Validate().ok());
}

TEST(TaskGraphTest, DeduplicatesEdges) {
  TaskGraph graph;
  NodeId a = graph.AddNode(NodeKind::kHtoDCopy, 0, nullptr, "a");
  NodeId b = graph.AddNode(NodeKind::kChunkSort, 0, nullptr, "b");
  graph.AddEdge(a, b);
  graph.AddEdge(a, b);
  EXPECT_EQ(graph.node(b).deps.size(), 1u);
  EXPECT_EQ(graph.node(a).succs.size(), 1u);
}

// ---------------------------------------------------------------------------
// GraphExecutor dispatch
// ---------------------------------------------------------------------------

TEST(GraphExecutorTest, EmptyGraphCompletesImmediately) {
  auto platform = MakePlatform();
  GraphExecutor executor(platform.get());
  ExecReport report;
  CheckOk(platform->Run(executor.Run(TaskGraph{}, {}, &report)));
  EXPECT_TRUE(report.nodes.empty());
  EXPECT_DOUBLE_EQ(report.makespan, 0);
}

TEST(GraphExecutorTest, RespectsDependencyOrder) {
  auto platform = MakePlatform();
  GraphExecutor executor(platform.get());
  TaskGraph graph;
  Span sa, sb, sc;
  NodeId a =
      graph.AddNode(NodeKind::kHtoDCopy, 0, Body(platform.get(), 0.1, &sa));
  NodeId b =
      graph.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.2, &sb));
  NodeId c =
      graph.AddNode(NodeKind::kDtoHCopy, 0, Body(platform.get(), 0.1, &sc));
  graph.AddEdge(a, b);
  graph.AddEdge(b, c);
  std::vector<JobSubmission> jobs;
  jobs.push_back({std::move(graph), {}, nullptr});
  CheckOk(platform->Run(RunJobs(&executor, std::move(jobs))));
  EXPECT_GE(sb.start, sa.end);
  EXPECT_GE(sc.start, sb.end);
  EXPECT_DOUBLE_EQ(sc.end, 0.4);
}

TEST(GraphExecutorTest, ComputeLaneSerializesOneDevice) {
  auto platform = MakePlatform();
  GraphExecutor executor(platform.get());
  TaskGraph graph;
  Span s1, s2;
  graph.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.1, &s1));
  graph.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.1, &s2));
  std::vector<JobSubmission> jobs;
  jobs.push_back({std::move(graph), {}, nullptr});
  CheckOk(platform->Run(RunJobs(&executor, std::move(jobs))));
  // Same (device, lane): one at a time, in submission order.
  EXPECT_FALSE(s1.Overlaps(s2));
  EXPECT_GE(s2.start, s1.end);
}

TEST(GraphExecutorTest, ComputeLanesOfDistinctDevicesOverlap) {
  auto platform = MakePlatform();
  GraphExecutor executor(platform.get());
  TaskGraph graph;
  Span s1, s2;
  graph.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.1, &s1));
  graph.AddNode(NodeKind::kChunkSort, 1, Body(platform.get(), 0.1, &s2));
  std::vector<JobSubmission> jobs;
  jobs.push_back({std::move(graph), {}, nullptr});
  CheckOk(platform->Run(RunJobs(&executor, std::move(jobs))));
  EXPECT_TRUE(s1.Overlaps(s2));
}

TEST(GraphExecutorTest, CopyAndComputeLanesOverlapOnOneDevice) {
  auto platform = MakePlatform();
  GraphExecutor executor(platform.get());
  TaskGraph graph;
  Span in, compute, out;
  graph.AddNode(NodeKind::kHtoDCopy, 0, Body(platform.get(), 0.1, &in));
  graph.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.1, &compute));
  graph.AddNode(NodeKind::kDtoHCopy, 0, Body(platform.get(), 0.1, &out));
  std::vector<JobSubmission> jobs;
  jobs.push_back({std::move(graph), {}, nullptr});
  CheckOk(platform->Run(RunJobs(&executor, std::move(jobs))));
  // Distinct engine lanes: all three run concurrently, like the dual copy
  // engines plus SMs of a real GPU.
  EXPECT_TRUE(in.Overlaps(compute));
  EXPECT_TRUE(compute.Overlaps(out));
}

TEST(GraphExecutorTest, BlockSwapAndHostNodesAreUnthrottled) {
  auto platform = MakePlatform();
  GraphExecutor executor(platform.get());
  TaskGraph graph;
  Span s1, s2, h1, h2;
  graph.AddNode(NodeKind::kBlockSwap, 0, Body(platform.get(), 0.1, &s1));
  graph.AddNode(NodeKind::kBlockSwap, 0, Body(platform.get(), 0.1, &s2));
  graph.AddNode(NodeKind::kHost, -1, Body(platform.get(), 0.1, &h1));
  graph.AddNode(NodeKind::kHost, -1, Body(platform.get(), 0.1, &h2));
  std::vector<JobSubmission> jobs;
  jobs.push_back({std::move(graph), {}, nullptr});
  CheckOk(platform->Run(RunJobs(&executor, std::move(jobs))));
  // The flow network prices contending swaps; the lane map must not add a
  // second serialization on top.
  EXPECT_TRUE(s1.Overlaps(s2));
  EXPECT_TRUE(h1.Overlaps(h2));
}

TEST(GraphExecutorTest, HigherPriorityOvertakesQueuedNodes) {
  auto platform = MakePlatform();
  GraphExecutor executor(platform.get());

  // Low-priority job: three ready compute nodes on device 0. The first
  // occupies the lane; the rest queue.
  TaskGraph low;
  Span l1, l2, l3;
  low.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.1, &l1));
  low.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.1, &l2));
  low.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.1, &l3));

  // High-priority job submitted second: its node must run as soon as the
  // lane frees, ahead of the low job's queued nodes.
  TaskGraph high;
  Span h;
  high.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.1, &h));

  std::vector<JobSubmission> jobs;
  jobs.push_back({std::move(low), {.priority = 0, .label = "low"}, nullptr});
  jobs.push_back({std::move(high), {.priority = 5, .label = "high"}, nullptr});
  CheckOk(platform->Run(RunJobs(&executor, std::move(jobs))));

  EXPECT_LT(h.start, l2.start);
  EXPECT_LT(h.start, l3.start);
  EXPECT_GE(h.start, l1.end);  // no cancellation of work already running
}

TEST(GraphExecutorTest, EqualPriorityDispatchesOldestFirst) {
  auto platform = MakePlatform();
  GraphExecutor executor(platform.get());
  TaskGraph a, b;
  Span sa, sb;
  a.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.1, &sa));
  b.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.1, &sb));
  std::vector<JobSubmission> jobs;
  jobs.push_back({std::move(a), {.priority = 1, .label = "first"}, nullptr});
  jobs.push_back({std::move(b), {.priority = 1, .label = "second"}, nullptr});
  CheckOk(platform->Run(RunJobs(&executor, std::move(jobs))));
  EXPECT_LT(sa.start, sb.start);
}

// ---------------------------------------------------------------------------
// Report and critical path
// ---------------------------------------------------------------------------

TEST(GraphExecutorTest, ReportRecordsPerNodeTimeline) {
  auto platform = MakePlatform();
  GraphExecutor executor(platform.get());
  TaskGraph graph;
  Span sa, sb, sc;
  NodeId a =
      graph.AddNode(NodeKind::kHtoDCopy, 0, Body(platform.get(), 0.1, &sa));
  NodeId b =
      graph.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.3, &sb));
  NodeId c =
      graph.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.1, &sc));
  graph.AddEdge(a, b);
  graph.AddEdge(a, c);
  ExecReport report;
  std::vector<JobSubmission> jobs;
  jobs.push_back(
      {std::move(graph), {.priority = 0, .label = "job"}, &report});
  CheckOk(platform->Run(RunJobs(&executor, std::move(jobs))));

  ASSERT_EQ(report.nodes.size(), 3u);
  for (const auto& run : report.nodes) {
    EXPECT_GE(run.ready, 0) << run.label;
    EXPECT_GE(run.start, run.ready) << run.label;
    EXPECT_GE(run.end, run.start) << run.label;
    EXPECT_GE(run.lane_wait(), 0) << run.label;
  }
  // b and c contend for the compute lane; one of them waited.
  EXPECT_GT(report.nodes[static_cast<std::size_t>(b)].lane_wait() +
                report.nodes[static_cast<std::size_t>(c)].lane_wait(),
            0);
  EXPECT_DOUBLE_EQ(report.makespan, 0.5);
}

TEST(GraphExecutorTest, CriticalPathFollowsLatestFinishingDependencies) {
  auto platform = MakePlatform();
  GraphExecutor executor(platform.get());
  TaskGraph graph;
  Span sa, sb, sc, sd;
  // a -> {b(0.3), c(0.1)} -> d: b finishes last, so the critical path is
  // a -> b -> d.
  NodeId a =
      graph.AddNode(NodeKind::kHtoDCopy, 0, Body(platform.get(), 0.1, &sa));
  NodeId b =
      graph.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.3, &sb));
  NodeId c =
      graph.AddNode(NodeKind::kChunkSort, 1, Body(platform.get(), 0.1, &sc));
  NodeId d =
      graph.AddNode(NodeKind::kDtoHCopy, 0, Body(platform.get(), 0.1, &sd));
  graph.AddEdge(a, b);
  graph.AddEdge(a, c);
  graph.AddEdge(b, d);
  graph.AddEdge(c, d);
  ExecReport report;
  std::vector<JobSubmission> jobs;
  jobs.push_back({std::move(graph), {.priority = 0, .label = "cp"}, &report});
  CheckOk(platform->Run(RunJobs(&executor, std::move(jobs))));

  EXPECT_EQ(report.critical_path, (std::vector<NodeId>{a, b, d}));
  EXPECT_DOUBLE_EQ(report.critical_seconds, 0.5);
  EXPECT_DOUBLE_EQ(report.makespan, 0.5);

  const std::string rendered = RenderCriticalPath(report);
  EXPECT_NE(rendered.find("Critical path"), std::string::npos);
  EXPECT_NE(rendered.find("chunk-sort"), std::string::npos);
}

TEST(GraphExecutorTest, PublishesMetricsWhenRegistryAttached) {
  auto platform = MakePlatform();
  obs::MetricsRegistry metrics;
  platform->SetMetrics(&metrics);
  GraphExecutor executor(platform.get());
  TaskGraph graph;
  Span s;
  graph.AddNode(NodeKind::kChunkSort, 0, Body(platform.get(), 0.1, &s));
  std::vector<JobSubmission> jobs;
  jobs.push_back({std::move(graph), {}, nullptr});
  CheckOk(platform->Run(RunJobs(&executor, std::move(jobs))));
  EXPECT_DOUBLE_EQ(metrics.CounterValue(kExecJobsTotal), 1);
  EXPECT_DOUBLE_EQ(
      metrics.CounterValue(kExecNodesTotal, {{"kind", "chunk-sort"}}), 1);
}

}  // namespace
}  // namespace mgs::exec
