// Tests for the fault-injection and resilience subsystem: scenario parsing,
// runtime link mutation in the flow network and topology, fail-stop device
// loss, transient copy errors, and the sort server's recovery policy
// (retry with backoff, requeue after device loss, HET fallback).

#include "fault/injector.h"
#include "fault/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/p2p_sort.h"
#include "sched/server.h"
#include "sim/flow_network.h"
#include "sim/simulator.h"
#include "topo/systems.h"
#include "util/datagen.h"

namespace mgs::fault {
namespace {

// Same scale model as sched_test: 2e9 logical keys -> 1000 actual keys.
constexpr double kScale = 2e6;

std::unique_ptr<vgpu::Platform> MakePlatform(const std::string& system) {
  return CheckOk(vgpu::Platform::Create(CheckOk(topo::MakeSystem(system)),
                                        vgpu::PlatformOptions{kScale}));
}

sched::JobSpec MakeJob(double arrival, double keys, int gpus,
                       std::vector<int> pinned = {}) {
  sched::JobSpec spec;
  spec.arrival_seconds = arrival;
  spec.logical_keys = keys;
  spec.gpus = gpus;
  spec.pinned_gpus = std::move(pinned);
  spec.seed = static_cast<std::uint64_t>(keys) + gpus;
  return spec;
}

// ---------------------------------------------------------------------------
// Scenario parsing
// ---------------------------------------------------------------------------

TEST(ScenarioTest, ParsesInlineGrammar) {
  auto sc = FaultScenario::Parse(
      "seed=7;\n"
      "at=0.8 link=nvl12(GPU6-nvswitch) factor=1   # restore\n"
      "at=0.3 link=nvl12(GPU6-nvswitch) factor=0.2;"
      "at=1.1 gpu=3 fail; at=1.0 link=nvl-x1 down; at=1.6 link=nvl-x1 up;"
      "at=0 copy-error rate=0.002 until=2.0");
  ASSERT_TRUE(sc.ok()) << sc.status();
  EXPECT_EQ(sc->seed, 7u);
  ASSERT_EQ(sc->events.size(), 6u);
  // Sorted by time.
  EXPECT_DOUBLE_EQ(sc->events[0].at, 0);
  EXPECT_EQ(sc->events[0].kind, FaultKind::kCopyErrorRate);
  EXPECT_DOUBLE_EQ(sc->events[0].rate, 0.002);
  EXPECT_DOUBLE_EQ(sc->events[0].until, 2.0);
  EXPECT_EQ(sc->events[1].kind, FaultKind::kLinkBandwidth);
  EXPECT_DOUBLE_EQ(sc->events[1].factor, 0.2);
  EXPECT_EQ(sc->events[1].link, "nvl12(GPU6-nvswitch)");
  EXPECT_EQ(sc->events[2].kind, FaultKind::kLinkBandwidth);
  EXPECT_DOUBLE_EQ(sc->events[2].factor, 1.0);
  EXPECT_EQ(sc->events[3].kind, FaultKind::kLinkDown);
  EXPECT_EQ(sc->events[3].link, "nvl-x1");
  EXPECT_EQ(sc->events[4].kind, FaultKind::kGpuFail);
  EXPECT_EQ(sc->events[4].gpu, 3);
  EXPECT_EQ(sc->events[5].kind, FaultKind::kLinkUp);
}

TEST(ScenarioTest, ParsesJson) {
  auto sc = FaultScenario::ParseJson(
      R"({"seed": 9, "events": [
            {"at": 0.3, "link": "nvl12", "factor": 0.2},
            {"at": 1.1, "gpu": 3, "fail": true},
            {"at": 1.0, "link": "nvl-x1", "down": true},
            {"at": 0.0, "copy_error_rate": 0.002, "until": 2.0}]})");
  ASSERT_TRUE(sc.ok()) << sc.status();
  EXPECT_EQ(sc->seed, 9u);
  ASSERT_EQ(sc->events.size(), 4u);
  EXPECT_EQ(sc->events[0].kind, FaultKind::kCopyErrorRate);
  EXPECT_EQ(sc->events[1].kind, FaultKind::kLinkBandwidth);
  EXPECT_EQ(sc->events[2].kind, FaultKind::kLinkDown);
  EXPECT_EQ(sc->events[3].kind, FaultKind::kGpuFail);
  EXPECT_EQ(sc->events[3].gpu, 3);
}

TEST(ScenarioTest, RoundTripsThroughToString) {
  auto sc = FaultScenario::Parse(
      "seed=5; at=0.5 gpu=1 fail; at=0.2 link=pcie factor=0.5;"
      "at=0.9 link=pcie down; at=1.4 link=pcie up;"
      "at=0 copy-error rate=0.01 until=3");
  ASSERT_TRUE(sc.ok()) << sc.status();
  auto again = FaultScenario::Parse(sc->ToString());
  ASSERT_TRUE(again.ok()) << again.status() << "\nspec: " << sc->ToString();
  EXPECT_EQ(again->seed, sc->seed);
  ASSERT_EQ(again->events.size(), sc->events.size());
  for (std::size_t i = 0; i < sc->events.size(); ++i) {
    EXPECT_EQ(again->events[i].kind, sc->events[i].kind) << i;
    EXPECT_DOUBLE_EQ(again->events[i].at, sc->events[i].at) << i;
    EXPECT_EQ(again->events[i].gpu, sc->events[i].gpu) << i;
    EXPECT_EQ(again->events[i].link, sc->events[i].link) << i;
    EXPECT_DOUBLE_EQ(again->events[i].factor, sc->events[i].factor) << i;
    EXPECT_DOUBLE_EQ(again->events[i].rate, sc->events[i].rate) << i;
    EXPECT_DOUBLE_EQ(again->events[i].until, sc->events[i].until) << i;
  }
}

TEST(ScenarioTest, ClusterSugarExpandsToLinkEvents) {
  // nic=<i> is sugar for link=nic<i>; rack=<r> expands to the rack's leaf
  // switch ports plus its spine uplink (see src/net/cluster.h link naming).
  auto sc = FaultScenario::Parse(
      "at=2.0 nic=1 down; at=2.5 nic=1 up; at=3.0 rack=0 down;"
      "at=3.4 rack=0 factor=1");
  ASSERT_TRUE(sc.ok()) << sc.status();
  ASSERT_EQ(sc->events.size(), 6u);
  EXPECT_EQ(sc->events[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(sc->events[0].link, "nic1");
  EXPECT_EQ(sc->events[1].kind, FaultKind::kLinkUp);
  EXPECT_EQ(sc->events[1].link, "nic1");
  // rack=0 down: one event per fabric stage, same time and action.
  EXPECT_EQ(sc->events[2].kind, FaultKind::kLinkDown);
  EXPECT_EQ(sc->events[2].link, "leaf0");
  EXPECT_EQ(sc->events[3].kind, FaultKind::kLinkDown);
  EXPECT_EQ(sc->events[3].link, "spine0");
  EXPECT_DOUBLE_EQ(sc->events[3].at, 3.0);
  EXPECT_EQ(sc->events[4].kind, FaultKind::kLinkBandwidth);
  EXPECT_EQ(sc->events[4].link, "leaf0");
  EXPECT_DOUBLE_EQ(sc->events[4].factor, 1.0);
  EXPECT_EQ(sc->events[5].link, "spine0");

  // Round-trips through ToString as plain link events.
  auto again = FaultScenario::Parse(sc->ToString());
  ASSERT_TRUE(again.ok()) << again.status() << "\nspec: " << sc->ToString();
  ASSERT_EQ(again->events.size(), sc->events.size());
  for (std::size_t i = 0; i < sc->events.size(); ++i) {
    EXPECT_EQ(again->events[i].link, sc->events[i].link) << i;
    EXPECT_EQ(again->events[i].kind, sc->events[i].kind) << i;
  }

  // rack= names a whole fabric stage; mixing it with an explicit link is
  // ambiguous and rejected.
  EXPECT_FALSE(FaultScenario::Parse("at=0 rack=0 link=x down").ok());
  EXPECT_FALSE(FaultScenario::Parse("at=0 rack=0 nic=1 down").ok());
}

TEST(ScenarioTest, RejectsMalformedClauses) {
  EXPECT_FALSE(FaultScenario::Parse("at=0.5 gpu=1").ok());         // no fault
  EXPECT_FALSE(FaultScenario::Parse("at=-1 gpu=1 fail").ok());     // at < 0
  EXPECT_FALSE(FaultScenario::Parse("at=0 link=x").ok());          // no action
  EXPECT_FALSE(FaultScenario::Parse("at=0 link=x factor=0").ok()); // use down
  EXPECT_FALSE(FaultScenario::Parse("at=0 link=x down up").ok());  // both
  EXPECT_FALSE(FaultScenario::Parse("at=0 copy-error rate=1.5").ok());
  EXPECT_FALSE(FaultScenario::Parse("at=0 gpu=1 fail link=x down").ok());
  EXPECT_FALSE(FaultScenario::ParseJson("{\"events\": 3}").ok());
  EXPECT_FALSE(FaultScenario::ParseJson("{notjson").ok());
}

TEST(ScenarioTest, LoadsFilesAndInlineSpecs) {
  const std::string path = ::testing::TempDir() + "/fault_plan.json";
  {
    std::ofstream out(path);
    out << R"({"seed": 3, "events": [{"at": 0.1, "gpu": 0, "fail": true}]})";
  }
  auto from_at = FaultScenario::Load("@" + path);
  ASSERT_TRUE(from_at.ok()) << from_at.status();
  EXPECT_EQ(from_at->seed, 3u);
  ASSERT_EQ(from_at->events.size(), 1u);

  auto from_bare = FaultScenario::Load(path);  // bare readable path
  ASSERT_TRUE(from_bare.ok()) << from_bare.status();
  EXPECT_EQ(from_bare->events.size(), 1u);

  auto inline_spec = FaultScenario::Load("at=0.1 gpu=0 fail");
  ASSERT_TRUE(inline_spec.ok()) << inline_spec.status();
  EXPECT_EQ(inline_spec->events[0].kind, FaultKind::kGpuFail);

  EXPECT_FALSE(FaultScenario::Load("@/no/such/fault_plan").ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Flow-network link mutation (satellite: degrade mid-transfer, abort)
// ---------------------------------------------------------------------------

class FlowFaultTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  sim::FlowNetwork net_{&sim_};
};

TEST_F(FlowFaultTest, DegradeMidTransferStretchesCompletion) {
  sim::ResourceId link = net_.AddResource("link", 10.0);  // 10 B/s
  double done_at = -1;
  net_.StartFlow(100.0, {{link, 1.0}}, [&] { done_at = sim_.Now(); });
  // Halve the capacity at t=5: 50 bytes remain, now at 5 B/s -> +10 s.
  sim_.Schedule(5.0, [&] { net_.SetResourceCapacity(link, 5.0); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done_at, 15.0);
}

TEST_F(FlowFaultTest, RestoreMidTransferSpeedsCompletion) {
  sim::ResourceId link = net_.AddResource("link", 5.0);
  double done_at = -1;
  net_.StartFlow(100.0, {{link, 1.0}}, [&] { done_at = sim_.Now(); });
  // 25 bytes by t=5, then 75 remaining at 10 B/s -> done at 12.5.
  sim_.Schedule(5.0, [&] { net_.SetResourceCapacity(link, 10.0); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done_at, 12.5);
}

TEST_F(FlowFaultTest, AbortCrossingFlowsFiresErrorCallbacks) {
  sim::ResourceId bad = net_.AddResource("bad", 10.0);
  sim::ResourceId good = net_.AddResource("good", 10.0);
  Status victim_status = Status::OK();
  double victim_at = -1, survivor_at = -1;
  net_.StartFlow(100.0, {{bad, 1.0}}, [&](const Status& s) {
    victim_status = s;
    victim_at = sim_.Now();
  });
  net_.StartFlow(100.0, {{good, 1.0}},
                 [&](const Status& s) {
                   ASSERT_TRUE(s.ok());
                   survivor_at = sim_.Now();
                 });
  sim_.Schedule(4.0, [&] {
    EXPECT_EQ(net_.AbortFlowsCrossing(bad, Status::Unavailable("link down")),
              1);
  });
  sim_.Run();
  EXPECT_EQ(victim_status.code(), StatusCode::kUnavailable);
  EXPECT_DOUBLE_EQ(victim_at, 4.0);
  EXPECT_DOUBLE_EQ(survivor_at, 10.0);  // unaffected
}

// ---------------------------------------------------------------------------
// Topology-level link state
// ---------------------------------------------------------------------------

TEST(TopoFaultTest, BandwidthFactorAndLinkStateRoundTrip) {
  auto platform = MakePlatform("delta-d22x");
  auto& topo = platform->mutable_topology();
  auto* net = &platform->network();

  ASSERT_TRUE(topo.SetLinkBandwidthFactor("nvl-x1", 0.25, net).ok());
  EXPECT_EQ(topo.DegradedLinkCount(), 1);
  EXPECT_DOUBLE_EQ(CheckOk(topo.LinkBandwidthFactor("nvl-x1")), 0.25);

  ASSERT_TRUE(topo.SetLinkUp("nvl-x1", false, net).ok());
  EXPECT_EQ(topo.DownLinkCount(), 1);
  EXPECT_FALSE(CheckOk(topo.LinkIsUp("nvl-x1")));

  ASSERT_TRUE(topo.SetLinkUp("nvl-x1", true, net).ok());
  ASSERT_TRUE(topo.SetLinkBandwidthFactor("nvl-x1", 1.0, net).ok());
  EXPECT_EQ(topo.DownLinkCount(), 0);
  EXPECT_EQ(topo.DegradedLinkCount(), 0);

  EXPECT_FALSE(topo.SetLinkUp("no-such-link", false, net).ok());
  EXPECT_FALSE(topo.SetLinkBandwidthFactor("nvl-x1", -0.5, net).ok());
}

// Dropping the GPU1-GPU3 single-NVLink on the DELTA partial mesh mid-merge
// must either re-route the exchange (output still sorted) or fail the sort
// with a clean retryable Status — never wedge or corrupt.
TEST(TopoFaultTest, DropDeltaWeakLinkMidMergeFailsCleanlyOrReroutes) {
  DataGenOptions gen;
  gen.seed = 11;
  auto keys = GenerateKeys<std::int32_t>(1000, gen);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());

  // Baseline run to locate the merge phase in time.
  double merge_mid;
  {
    auto platform = MakePlatform("delta-d22x");
    vgpu::HostBuffer<std::int32_t> data(keys);
    core::SortOptions options;
    options.gpu_set = {1, 3};  // the pair joined by "nvl-x1"
    auto stats = core::P2pSort(platform.get(), &data, options);
    ASSERT_TRUE(stats.ok()) << stats.status();
    merge_mid = stats->phases.htod + stats->phases.sort +
                0.5 * stats->phases.merge;
    ASSERT_GT(stats->phases.merge, 0);
  }

  auto platform = MakePlatform("delta-d22x");
  platform->simulator().Schedule(merge_mid, [&] {
    CheckOk(platform->mutable_topology().SetLinkUp("nvl-x1", false,
                                                   &platform->network()));
  });
  vgpu::HostBuffer<std::int32_t> data(keys);
  core::SortOptions options;
  options.gpu_set = {1, 3};
  auto stats = core::P2pSort(platform.get(), &data, options);
  if (stats.ok()) {
    EXPECT_EQ(data.vector(), expected);  // re-routed exchange
  } else {
    EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable)
        << stats.status();
  }
}

// ---------------------------------------------------------------------------
// Injector
// ---------------------------------------------------------------------------

TEST(InjectorTest, ArmValidatesGpuIdsAndLinkNames) {
  {
    auto platform = MakePlatform("delta-d22x");  // 4 GPUs
    FaultInjector bad_gpu(platform.get(),
                          CheckOk(FaultScenario::Parse("at=0 gpu=9 fail")));
    EXPECT_FALSE(bad_gpu.Arm().ok());
  }
  {
    auto platform = MakePlatform("delta-d22x");
    FaultInjector bad_link(
        platform.get(),
        CheckOk(FaultScenario::Parse("at=0 link=nvl99 down")));
    EXPECT_FALSE(bad_link.Arm().ok());
  }
  {
    auto platform = MakePlatform("delta-d22x");
    FaultInjector ok(platform.get(),
                     CheckOk(FaultScenario::Parse("at=0 link=nvl-x1 down")));
    EXPECT_TRUE(ok.Arm().ok());
  }
}

TEST(InjectorTest, GpuFailStopSurfacesRetryableStatus) {
  auto platform = MakePlatform("dgx-a100");
  FaultInjector injector(platform.get(),
                         CheckOk(FaultScenario::Parse("at=0.01 gpu=0 fail")));
  ASSERT_TRUE(injector.Arm().ok());

  DataGenOptions gen;
  gen.seed = 13;
  vgpu::HostBuffer<std::int32_t> data(GenerateKeys<std::int32_t>(1000, gen));
  core::SortOptions options;
  options.gpu_set = {0, 1};
  auto stats = core::P2pSort(platform.get(), &data, options);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable)
      << stats.status();
  EXPECT_TRUE(platform->device(0).failed());
  EXPECT_EQ(injector.stats().gpus_failed, 1);
  EXPECT_EQ(injector.stats().events_fired, 1);
  // No leaked device memory even on the failure path.
  for (int g = 0; g < platform->num_devices(); ++g) {
    EXPECT_DOUBLE_EQ(platform->device(g).memory_used(), 0) << "gpu" << g;
  }
}

TEST(InjectorTest, CopyErrorsAreDeterministicPerSeed) {
  auto run = [&](std::uint64_t seed_mix) {
    auto platform = MakePlatform("dgx-a100");
    FaultInjector injector(
        platform.get(),
        CheckOk(FaultScenario::Parse("at=0 copy-error rate=0.35")), seed_mix);
    CheckOk(injector.Arm());
    DataGenOptions gen;
    gen.seed = 17;
    vgpu::HostBuffer<std::int32_t> data(GenerateKeys<std::int32_t>(1000, gen));
    core::SortOptions options;
    options.gpu_set = {0, 1, 2, 3};
    auto stats = core::P2pSort(platform.get(), &data, options);
    return std::make_pair(injector.stats().copy_errors_injected,
                          stats.ok() ? StatusCode::kOk : stats.status().code());
  };
  const auto a = run(5);
  const auto b = run(5);
  EXPECT_EQ(a, b);                  // identical outcome for identical seeds
  EXPECT_GT(a.first, 0);            // rate 0.35 must actually inject
  EXPECT_EQ(a.second, StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// SortServer recovery
// ---------------------------------------------------------------------------

sched::ServerOptions RecoveryOptionsForTest() {
  sched::ServerOptions options;
  options.recovery.max_retries = 3;
  options.recovery.backoff_base_seconds = 0.5;
  options.recovery.backoff_jitter = 0;  // exact timings in assertions
  options.recovery.health_check_seconds = 0.05;
  return options;
}

// A GPU dies while jobs run: the victim job is requeued on the remaining
// GPUs, completes with sorted output, and every reservation is released.
TEST(RecoveryTest, GpuLossRequeuesJobOnRemainingGpus) {
  auto platform = MakePlatform("dgx-a100");
  FaultInjector injector(platform.get(),
                         CheckOk(FaultScenario::Parse("at=0.05 gpu=2 fail")));
  sched::SortServer server(platform.get(), RecoveryOptionsForTest());
  ASSERT_TRUE(injector.Arm().ok());

  // Fill all 8 GPUs so one job is certainly running on GPU2 at t=0.05.
  for (int i = 0; i < 8; ++i) server.Submit(MakeJob(0, 4e9, 1));
  auto report = server.Run();
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(report->completed, 8);
  EXPECT_EQ(report->failed, 0);
  EXPECT_GE(report->recovered, 1);
  EXPECT_GE(report->total_retries, 1);
  EXPECT_GT(report->mttr_seconds, 0);

  bool saw_retry = false;
  for (const auto& job : report->jobs) {
    EXPECT_EQ(job.state, sched::JobState::kDone) << job.error;
    if (job.retries > 0) {
      saw_retry = true;
      // The retry must have landed on a healthy device.
      EXPECT_EQ(std::find(job.gpu_set.begin(), job.gpu_set.end(), 2),
                job.gpu_set.end());
      EXPECT_EQ(job.error_code, StatusCode::kOk) << job.error;
      EXPECT_TRUE(job.recovered());
      EXPECT_GT(job.recovery_seconds(), 0);
    }
  }
  EXPECT_TRUE(saw_retry);

  // Reservations and allocations fully released, failed GPU included.
  for (int g = 0; g < platform->num_devices(); ++g) {
    EXPECT_DOUBLE_EQ(platform->device(g).memory_used(), 0) << "gpu" << g;
    EXPECT_DOUBLE_EQ(platform->device(g).memory_reserved(), 0) << "gpu" << g;
  }
  EXPECT_TRUE(platform->device(2).failed());
}

// Device loss can strand a job that now needs more GPUs than exist; the
// health monitor must fail it cleanly instead of wedging the service.
TEST(RecoveryTest, UnsatisfiableJobFailsCleanlyAfterDeviceLoss) {
  auto platform = MakePlatform("dgx-a100");
  FaultInjector injector(platform.get(),
                         CheckOk(FaultScenario::Parse("at=0.05 gpu=3 fail")));
  sched::SortServer server(platform.get(), RecoveryOptionsForTest());
  ASSERT_TRUE(injector.Arm().ok());

  const std::int64_t big = server.Submit(MakeJob(0, 8e9, 8));  // all 8 GPUs
  auto report = server.Run();
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(report->failed, 1);
  EXPECT_EQ(report->completed, 0);
  const auto& rec = server.job(big);
  EXPECT_EQ(rec.state, sched::JobState::kFailed);
  EXPECT_EQ(rec.error_code, StatusCode::kUnavailable) << rec.error;
  EXPECT_FALSE(rec.error.empty());
  for (int g = 0; g < platform->num_devices(); ++g) {
    EXPECT_DOUBLE_EQ(platform->device(g).memory_used(), 0) << "gpu" << g;
    EXPECT_DOUBLE_EQ(platform->device(g).memory_reserved(), 0) << "gpu" << g;
  }
}

// A transient copy-error window fails the first attempt; the backoff retry
// lands after the window closes and succeeds.
TEST(RecoveryTest, TransientCopyErrorWindowRecoveredByRetry) {
  auto platform = MakePlatform("dgx-a100");
  FaultInjector injector(
      platform.get(),
      CheckOk(FaultScenario::Parse("at=0 copy-error rate=1 until=1.0")));
  sched::ServerOptions options = RecoveryOptionsForTest();
  options.recovery.backoff_base_seconds = 2.0;  // retry after the window
  sched::SortServer server(platform.get(), options);
  ASSERT_TRUE(injector.Arm().ok());

  const std::int64_t id = server.Submit(MakeJob(0, 4e9, 2));
  auto report = server.Run();
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(report->completed, 1);
  EXPECT_EQ(report->failed, 0);
  EXPECT_EQ(report->recovered, 1);
  const auto& rec = server.job(id);
  EXPECT_TRUE(rec.recovered());
  EXPECT_GE(rec.retries, 1);
  EXPECT_GT(injector.stats().copy_errors_injected, 0);
}

// A P2P mesh degraded below the fallback threshold routes new jobs through
// the HET (via-host) sorter instead of the crippled direct path.
TEST(RecoveryTest, DegradedMeshTriggersHetFallback) {
  auto platform = MakePlatform("dgx-a100");
  FaultInjector injector(
      platform.get(),
      CheckOk(FaultScenario::Parse("at=0 link=nvl12 factor=0.05")));
  sched::ServerOptions options = RecoveryOptionsForTest();
  options.recovery.het_fallback_below = 0.5;
  sched::SortServer server(platform.get(), options);
  ASSERT_TRUE(injector.Arm().ok());

  const std::int64_t id = server.Submit(MakeJob(0.1, 4e9, 2));
  auto report = server.Run();
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(report->completed, 1);
  EXPECT_EQ(report->failed, 0);
  EXPECT_GE(report->het_fallbacks, 1);
  EXPECT_TRUE(server.job(id).het_fallback);
  EXPECT_EQ(server.job(id).state, sched::JobState::kDone);
}

// Two runs with the same seed produce identical schedules, fault draws,
// retries, and completion orders.
TEST(RecoveryTest, ChaosRunsAreDeterministicPerSeed) {
  const char* kPlan =
      "at=0.2 link=nvl12 factor=0.3; at=0.6 link=nvl12 factor=1;"
      "at=0.4 gpu=5 fail; at=0 copy-error rate=0.05 until=1.5";
  auto run = [&] {
    auto platform = MakePlatform("dgx-a100");
    FaultInjector injector(platform.get(),
                           CheckOk(FaultScenario::Parse(kPlan)), /*seed=*/7);
    sched::ServerOptions options = RecoveryOptionsForTest();
    options.recovery.het_fallback_below = 0.5;
    sched::SortServer server(platform.get(), options);
    CheckOk(injector.Arm());
    server.Submit(sched::MakePoissonWorkload(sched::JobMix{}, /*rate=*/4.0,
                                             /*jobs=*/10, /*seed=*/7));
    auto report = CheckOk(server.Run());
    report.jobs.clear();  // compare scalar fields + order below
    return std::make_tuple(report.completion_order, report.completed,
                           report.failed, report.recovered,
                           report.total_retries, report.het_fallbacks,
                           report.makespan,
                           injector.stats().copy_errors_injected);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::get<1>(a) + std::get<2>(a), 10);  // every job terminal
}

}  // namespace
}  // namespace mgs::fault
