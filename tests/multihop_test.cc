// Tests for multi-hop P2P routing (Section 7 future work): P2P transfers
// forwarded through intermediate GPUs instead of the host.

#include <gtest/gtest.h>

#include "core/p2p_sort.h"
#include "topo/systems.h"
#include "topo/transfer_probe.h"
#include "util/datagen.h"
#include "util/units.h"

namespace mgs::topo {
namespace {

TEST(MultihopTest, DeltaHostTraversalWithoutMultihop) {
  TransferProbe probe(MakeDeltaD22x());
  auto r = CheckOk(probe.Run({TransferProbe::PtoP(0, 3, 4 * kGB)}));
  EXPECT_NEAR(r.aggregate_throughput / kGB, 9, 1.5);
}

TEST(MultihopTest, DeltaMultihopRoutesOverNvlink) {
  auto topology = MakeDeltaD22x();
  topology->SetMultihopP2p(true);
  TransferProbe probe(std::move(topology));
  // 0 -> 3 via GPU 2 (two 2x-NVLink hops at 48 GB/s each, plus GPU 2's
  // HBM store-and-forward): ~5x faster than the PCIe 3.0 host route.
  auto r = CheckOk(probe.Run({TransferProbe::PtoP(0, 3, 4 * kGB)}));
  EXPECT_NEAR(r.aggregate_throughput / kGB, 48, 5);
}

TEST(MultihopTest, Ac922GainsNothing) {
  // No GPU-GPU links cross the socket boundary on the AC922: the best
  // multi-hop route still uses the X-Bus.
  auto topology = MakeAc922();
  topology->SetMultihopP2p(true);
  TransferProbe probe(std::move(topology));
  auto r = CheckOk(probe.Run({TransferProbe::PtoP(0, 2, 4 * kGB)}));
  EXPECT_NEAR(r.aggregate_throughput / kGB, 32, 5);
}

TEST(MultihopTest, DgxUnchanged) {
  // NVSwitch already connects all pairs directly.
  auto topology = MakeDgxA100();
  topology->SetMultihopP2p(true);
  TransferProbe probe(std::move(topology));
  auto r = CheckOk(probe.Run({TransferProbe::PtoP(0, 7, 4 * kGB)}));
  EXPECT_NEAR(r.aggregate_throughput / kGB, 279, 10);
}

TEST(MultihopTest, IntermediateHbmIsCharged) {
  auto topology = MakeDeltaD22x();
  topology->SetMultihopP2p(true);
  sim::Simulator sim;
  sim::FlowNetwork net(&sim);
  CheckOk(topology->Compile(&net));
  auto path = CheckOk(topology->CopyPath(
      CopyKind::kPeerToPeer, Endpoint::Gpu(0), Endpoint::Gpu(3)));
  // Expect a weight-2 HBM hop for the forwarding GPU.
  int heavy_hbm_hops = 0;
  for (const auto& hop : path) {
    if (hop.weight == 2.0) ++heavy_hbm_hops;
  }
  EXPECT_EQ(heavy_hbm_hops, 1);
}

TEST(MultihopTest, P2pSortStillCorrectWithMultihop) {
  auto topology = MakeDeltaD22x();
  topology->SetMultihopP2p(true);
  auto platform = CheckOk(vgpu::Platform::Create(std::move(topology)));
  DataGenOptions opt;
  auto keys = GenerateKeys<std::int32_t>(40'000, opt);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  core::SortOptions options;
  options.gpu_set = {0, 1, 2, 3};
  CheckOk(core::P2pSort(platform.get(), &data, options).status());
  EXPECT_EQ(data.vector(), expected);
}

TEST(MultihopTest, P2pSortFasterOnDeltaWithMultihop) {
  auto run = [](bool multihop) {
    auto topology = MakeDeltaD22x();
    topology->SetMultihopP2p(multihop);
    auto platform = CheckOk(vgpu::Platform::Create(
        std::move(topology), vgpu::PlatformOptions{2000.0}));
    DataGenOptions opt;
    auto keys = GenerateKeys<std::int32_t>(1'000'000, opt);  // 2e9 logical
    vgpu::HostBuffer<std::int32_t> data(std::move(keys));
    core::SortOptions options;
    options.gpu_set = {0, 1, 2, 3};
    return CheckOk(core::P2pSort(platform.get(), &data, options))
        .total_seconds;
  };
  const double baseline = run(false);
  const double multihop = run(true);
  EXPECT_LT(multihop, baseline)
      << "the global merge stage's host-traversing swaps dominate on the "
         "DELTA (Fig. 13a); routing them over NVLink must help";
}

}  // namespace
}  // namespace mgs::topo
