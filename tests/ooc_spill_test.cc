// Out-of-core NVMe spill tier: topology plumbing for the storage device
// (`nvme<i>` links, storage leaf nodes, fault addressing), the HET sorter's
// spill phase (runs written out and read back through the drive when the
// working set exceeds the granted device buffers), and its visibility in
// stats and metrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/gpu_set.h"
#include "core/het_sort.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "sim/flow_network.h"
#include "sim/simulator.h"
#include "topo/systems.h"
#include "util/datagen.h"
#include "util/units.h"
#include "vgpu/platform.h"

namespace mgs::core {
namespace {

std::unique_ptr<topo::Topology> Dgx100WithNvme() {
  auto topology = CheckOk(topo::MakeSystem("dgx-a100"));
  CheckOk(topology->AttachNvme(0, 7.0 * kGB, 5.0 * kGB));
  return topology;
}

TEST(NvmeTopology, AttachCreatesAddressableLink) {
  auto topology = Dgx100WithNvme();
  EXPECT_EQ(topology->num_nvme(), 1);
  EXPECT_EQ(topology->NvmeForSocket(0), 0);
  sim::Simulator sim;
  sim::FlowNetwork net(&sim);
  CheckOk(topology->Compile(&net));
  // The nvme0 link is a first-class flow resource: addressable for fault
  // injection (SetLinkUp) like any NVLink or PCIe link.
  EXPECT_TRUE(CheckOk(topology->LinkIsUp("nvme0")));
  CheckOk(topology->SetLinkUp("nvme0", false, &net));
  EXPECT_FALSE(CheckOk(topology->LinkIsUp("nvme0")));
  // A down drive turns the path query into a runtime error (retryable by
  // the spill path), not a crash.
  auto path = topology->NvmePath(0, /*write=*/true);
  EXPECT_FALSE(path.ok());
  EXPECT_EQ(path.status().code(), StatusCode::kUnavailable);
  CheckOk(topology->SetLinkUp("nvme0", true, &net));
  EXPECT_TRUE(topology->NvmePath(0, /*write=*/true).ok());
}

TEST(NvmeTopology, StorageNodesNeverTransit) {
  // P2P routing between GPUs must not discover paths through the storage
  // leaf: attaching a drive cannot change inter-GPU connectivity.
  sim::Simulator sim;
  sim::FlowNetwork net_plain(&sim), net_nvme(&sim);
  auto plain = CheckOk(topo::MakeSystem("dgx-a100"));
  CheckOk(plain->Compile(&net_plain));
  auto with_nvme = Dgx100WithNvme();
  CheckOk(with_nvme->Compile(&net_nvme));
  const auto a = topo::Endpoint::Gpu(0), b = topo::Endpoint::Gpu(1);
  const double before = CheckOk(
      plain->LoneFlowBandwidth(topo::CopyKind::kPeerToPeer, a, b));
  const double after = CheckOk(
      with_nvme->LoneFlowBandwidth(topo::CopyKind::kPeerToPeer, a, b));
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(HetSpill, ForceWithoutNvmeFailsPrecondition) {
  auto platform =
      CheckOk(vgpu::Platform::Create(CheckOk(topo::MakeSystem("dgx-a100"))));
  DataGenOptions gen;
  auto keys = GenerateKeys<std::int32_t>(100000, gen);
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  HetOptions het;
  het.spill = SpillMode::kForce;
  auto stats = HetSort(platform.get(), &data, het);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
}

TEST(HetSpill, AutoStaysInCoreWhenDataFits) {
  auto platform = CheckOk(vgpu::Platform::Create(Dgx100WithNvme()));
  DataGenOptions gen;
  auto keys = GenerateKeys<std::int32_t>(100000, gen);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  HetOptions het;
  het.spill = SpillMode::kAuto;
  auto stats = CheckOk(HetSort(platform.get(), &data, het));
  EXPECT_EQ(data.vector(), expected);
  EXPECT_EQ(stats.spilled_runs, 0);
  EXPECT_EQ(stats.spilled_bytes, 0);
  EXPECT_EQ(stats.phases.spill, 0);
}

TEST(HetSpill, SpillsWhenWorkingSetExceedsDeviceBuffers) {
  // 60e9 logical int32 keys (240 GB) against 33 GB per-GPU budgets: multiple
  // chunk groups, so kAuto must engage the drive.
  vgpu::PlatformOptions popts;
  popts.scale = 60000.0;
  auto platform = CheckOk(vgpu::Platform::Create(Dgx100WithNvme(), popts));
  obs::MetricsRegistry registry;
  platform->SetMetrics(&registry);
  DataGenOptions gen;
  auto keys = GenerateKeys<std::int32_t>(1000000, gen);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  HetOptions het;
  het.gpu_memory_budget = 33e9;
  het.spill = SpillMode::kAuto;
  auto stats = CheckOk(HetSort(platform.get(), &data, het));
  // Output still sorted, and the whole logical dataset went through the
  // drive: every run written once, all bytes read back for the merge.
  EXPECT_EQ(data.vector(), expected);
  EXPECT_GT(stats.chunk_groups, 1);
  EXPECT_GT(stats.spilled_runs, 0);
  EXPECT_EQ(stats.spill_nvme, 0);
  EXPECT_DOUBLE_EQ(stats.spilled_bytes, 240e9);
  EXPECT_GT(stats.phases.spill, 0);
  // total() accounts the spill phase; the storage-bound run is dominated
  // by drive time (240 GB at 5/7 GB/s dwarfs the in-memory phases).
  EXPECT_GT(stats.phases.spill, stats.phases.merge);
  // Metrics surface the tier: bytes counted per direction.
  auto& written = registry.GetCounter(obs::kNvmeBytes,
                                      {{"nvme", "0"}, {"dir", "write"}}, "");
  auto& read = registry.GetCounter(obs::kNvmeBytes,
                                   {{"nvme", "0"}, {"dir", "read"}}, "");
  EXPECT_DOUBLE_EQ(written.value(), 240e9);
  EXPECT_DOUBLE_EQ(read.value(), 240e9);
}

TEST(HetSpill, ForcedSpillSortsSmallDataToo) {
  auto platform = CheckOk(vgpu::Platform::Create(Dgx100WithNvme()));
  DataGenOptions gen;
  gen.distribution = Distribution::kZipf;
  auto keys = GenerateKeys<std::int64_t>(200000, gen);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  vgpu::HostBuffer<std::int64_t> data(std::move(keys));
  HetOptions het;
  het.spill = SpillMode::kForce;
  auto stats = CheckOk(HetSort(platform.get(), &data, het));
  EXPECT_EQ(data.vector(), expected);
  EXPECT_GT(stats.spilled_runs, 0);
  EXPECT_GT(stats.spilled_bytes, 0);
}

}  // namespace
}  // namespace mgs::core
