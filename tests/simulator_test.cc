#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace mgs::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
  EXPECT_TRUE(sim.Idle());
}

TEST(SimulatorTest, RunsEventAtScheduledTime) {
  Simulator sim;
  double fired_at = -1;
  sim.Schedule(2.5, [&] { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
  EXPECT_DOUBLE_EQ(sim.Now(), 2.5);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, EqualTimesFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsMayScheduleMoreEvents) {
  Simulator sim;
  double done_at = -1;
  sim.Schedule(1.0, [&] {
    sim.Schedule(1.0, [&] { done_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(done_at, 2.0);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  double fired_at = -1;
  sim.Schedule(1.0, [&] {
    sim.Schedule(-5.0, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 1.0);
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(1.0, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0) << "cancelled event should not move time";
}

TEST(SimulatorTest, CancelOneOfMany) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(1.0, [&] { order.push_back(1); });
  EventId id = sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(5.0, [&] { order.push_back(5); });
  sim.RunUntil(2.0);
  EXPECT_EQ(order, (std::vector<int>{1}));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(SimulatorTest, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double fired_at = -1;
  sim.ScheduleAt(4.0, [&] { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

}  // namespace
}  // namespace mgs::sim
