// Tests for the registry exporters (obs/export.h): golden strings for the
// Prometheus/JSON/CSV forms and file-extension dispatch.

#include "obs/export.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace mgs::obs {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream f(path);
  return std::string((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

MetricsRegistry SmallRegistry() {
  MetricsRegistry registry;
  registry.GetCounter("mgs_bytes_total", {{"gpu", "0"}}, "Bytes moved")
      .Add(1024);
  registry.GetGauge("mgs_depth", {}, "Queue depth").Set(3);
  Histogram& h = registry.GetHistogram("mgs_lat_seconds", {{"op", "copy"}},
                                       "Latencies",
                                       HistogramOptions{1.0, 2.0, 2});
  h.Observe(0.5);  // bucket le=1
  h.Observe(1.5);  // bucket le=2
  h.Observe(9.0);  // +Inf
  return registry;
}

TEST(PrometheusExportTest, GoldenText) {
  const std::string text = ToPrometheusText(SmallRegistry());
  const std::string expected =
      "# HELP mgs_bytes_total Bytes moved\n"
      "# TYPE mgs_bytes_total counter\n"
      "mgs_bytes_total{gpu=\"0\"} 1024\n"
      "# HELP mgs_depth Queue depth\n"
      "# TYPE mgs_depth gauge\n"
      "mgs_depth 3\n"
      "# HELP mgs_lat_seconds Latencies\n"
      "# TYPE mgs_lat_seconds histogram\n"
      "mgs_lat_seconds_bucket{op=\"copy\",le=\"1\"} 1\n"
      "mgs_lat_seconds_bucket{op=\"copy\",le=\"2\"} 2\n"
      "mgs_lat_seconds_bucket{op=\"copy\",le=\"+Inf\"} 3\n"
      "mgs_lat_seconds_sum{op=\"copy\"} 11\n"
      "mgs_lat_seconds_count{op=\"copy\"} 3\n";
  EXPECT_EQ(text, expected);
}

TEST(JsonExportTest, GoldenText) {
  const std::string json = ToJson(SmallRegistry());
  const std::string expected =
      "{\"families\":["
      "{\"name\":\"mgs_bytes_total\",\"kind\":\"counter\","
      "\"help\":\"Bytes moved\",\"metrics\":["
      "{\"labels\":{\"gpu\":\"0\"},\"value\":1024}]},"
      "{\"name\":\"mgs_depth\",\"kind\":\"gauge\","
      "\"help\":\"Queue depth\",\"metrics\":["
      "{\"labels\":{},\"value\":3}]},"
      "{\"name\":\"mgs_lat_seconds\",\"kind\":\"histogram\","
      "\"help\":\"Latencies\",\"metrics\":["
      "{\"labels\":{\"op\":\"copy\"},\"count\":3,\"sum\":11,\"buckets\":["
      "{\"le\":1,\"count\":1},{\"le\":2,\"count\":2},"
      "{\"le\":\"+Inf\",\"count\":3}]}]}"
      "]}";
  EXPECT_EQ(json, expected);
}

TEST(CsvExportTest, GoldenText) {
  const std::string csv = ToCsv(SmallRegistry());
  const std::string expected =
      "kind,name,labels,field,value\n"
      "counter,mgs_bytes_total,\"{gpu=\"\"0\"\"}\",value,1024\n"
      "gauge,mgs_depth,,value,3\n"
      "histogram,mgs_lat_seconds,\"{op=\"\"copy\"\"}\",le=1,1\n"
      "histogram,mgs_lat_seconds,\"{op=\"\"copy\"\"}\",le=2,2\n"
      "histogram,mgs_lat_seconds,\"{op=\"\"copy\"\"}\",le=+Inf,3\n"
      "histogram,mgs_lat_seconds,\"{op=\"\"copy\"\"}\",sum,11\n"
      "histogram,mgs_lat_seconds,\"{op=\"\"copy\"\"}\",count,3\n";
  EXPECT_EQ(csv, expected);
}

TEST(ExportTest, NumbersRoundTripAtFullPrecision) {
  MetricsRegistry registry;
  const double value = 0.12345678901234567;
  registry.GetCounter("c").Add(value);
  const std::string text = ToPrometheusText(registry);
  const auto at = text.rfind(' ');
  ASSERT_NE(at, std::string::npos);
  EXPECT_EQ(std::stod(text.substr(at + 1)), value);
}

TEST(WriteMetricsFileTest, ExtensionDispatch) {
  const MetricsRegistry registry = SmallRegistry();
  const auto dir = std::filesystem::temp_directory_path();

  const auto prom = (dir / "mgs_obs_test.prom").string();
  ASSERT_TRUE(WriteMetricsFile(registry, prom).ok());
  EXPECT_EQ(Slurp(prom), ToPrometheusText(registry));

  const auto json = (dir / "mgs_obs_test.json").string();
  ASSERT_TRUE(WriteMetricsFile(registry, json).ok());
  EXPECT_EQ(Slurp(json), ToJson(registry));

  const auto csv = (dir / "mgs_obs_test.csv").string();
  ASSERT_TRUE(WriteMetricsFile(registry, csv).ok());
  EXPECT_EQ(Slurp(csv), ToCsv(registry));

  for (const auto& path : {prom, json, csv}) {
    std::filesystem::remove(path);
  }
  EXPECT_FALSE(WriteMetricsFile(registry, "/no/such/dir/m.prom").ok());
}

}  // namespace
}  // namespace mgs::obs
