// Calibration regression tests: the three preset platforms must reproduce
// the paper's Section 4 measurements (Figures 2-7) within tolerance.

#include "topo/systems.h"

#include <gtest/gtest.h>

#include "topo/transfer_probe.h"
#include "util/units.h"

namespace mgs::topo {
namespace {

constexpr double kCopyBytes = 4 * kGB;  // the paper copies 4 GB blocks

// Asserts the aggregate throughput of a scenario is within rel_tol of the
// paper's reported GB/s.
void ExpectThroughput(TransferProbe& probe, std::vector<TransferOp> ops,
                      double paper_gbs, double rel_tol = 0.15) {
  auto result = probe.Run(ops);
  ASSERT_TRUE(result.ok()) << result.status();
  const double got = result->aggregate_throughput / kGB;
  EXPECT_NEAR(got, paper_gbs, paper_gbs * rel_tol)
      << "paper: " << paper_gbs << " GB/s, simulated: " << got << " GB/s";
}

// ---------------------------------------------------------------------------
// IBM AC922 (Figs. 2 & 5)
// ---------------------------------------------------------------------------

class Ac922Test : public ::testing::Test {
 protected:
  TransferProbe probe_{MakeAc922()};
};

TEST_F(Ac922Test, SerialHtoDLocal72) {
  ExpectThroughput(probe_, {TransferProbe::HtoD(0, kCopyBytes)}, 72);
}

TEST_F(Ac922Test, SerialDtoHLocal72) {
  ExpectThroughput(probe_, {TransferProbe::DtoH(0, kCopyBytes)}, 72);
}

TEST_F(Ac922Test, SerialHtoDRemote41) {
  ExpectThroughput(probe_, {TransferProbe::HtoD(2, kCopyBytes)}, 41);
}

TEST_F(Ac922Test, SerialDtoHRemote35) {
  ExpectThroughput(probe_, {TransferProbe::DtoH(2, kCopyBytes)}, 35);
}

TEST_F(Ac922Test, SerialBidiLocal127) {
  ExpectThroughput(probe_, TransferProbe::Bidirectional({0}, kCopyBytes), 127);
}

TEST_F(Ac922Test, ParallelHtoDLocalPair141) {
  ExpectThroughput(
      probe_,
      {TransferProbe::HtoD(0, kCopyBytes), TransferProbe::HtoD(1, kCopyBytes)},
      141);
}

TEST_F(Ac922Test, ParallelDtoHLocalPair109) {
  ExpectThroughput(
      probe_,
      {TransferProbe::DtoH(0, kCopyBytes), TransferProbe::DtoH(1, kCopyBytes)},
      109);
}

TEST_F(Ac922Test, ParallelBidiLocalPair136) {
  ExpectThroughput(probe_, TransferProbe::Bidirectional({0, 1}, kCopyBytes),
                   136);
}

TEST_F(Ac922Test, ParallelHtoDRemotePair39) {
  ExpectThroughput(
      probe_,
      {TransferProbe::HtoD(2, kCopyBytes), TransferProbe::HtoD(3, kCopyBytes)},
      39);
}

TEST_F(Ac922Test, ParallelDtoHRemotePair30) {
  ExpectThroughput(
      probe_,
      {TransferProbe::DtoH(2, kCopyBytes), TransferProbe::DtoH(3, kCopyBytes)},
      30, 0.20);
}

TEST_F(Ac922Test, ParallelBidiRemotePair54) {
  ExpectThroughput(probe_, TransferProbe::Bidirectional({2, 3}, kCopyBytes),
                   54);
}

TEST_F(Ac922Test, ParallelHtoDAllFour74) {
  std::vector<TransferOp> ops;
  for (int g = 0; g < 4; ++g) ops.push_back(TransferProbe::HtoD(g, kCopyBytes));
  ExpectThroughput(probe_, ops, 74, 0.20);
}

TEST_F(Ac922Test, SerialP2pDirect72) {
  ExpectThroughput(probe_, {TransferProbe::PtoP(0, 1, kCopyBytes)}, 72);
}

TEST_F(Ac922Test, SerialP2pRemote32) {
  ExpectThroughput(probe_, {TransferProbe::PtoP(0, 2, kCopyBytes)}, 32);
  ExpectThroughput(probe_, {TransferProbe::PtoP(0, 3, kCopyBytes)}, 33);
}

TEST_F(Ac922Test, ParallelP2pDirectPair145) {
  ExpectThroughput(probe_, TransferProbe::P2pRing({0, 1}, kCopyBytes), 145);
  ExpectThroughput(probe_, TransferProbe::P2pRing({2, 3}, kCopyBytes), 145);
}

TEST_F(Ac922Test, ParallelP2pCrossSocket53) {
  // 0<->3 and 1<->2, all traversing the X-Bus.
  ExpectThroughput(probe_, TransferProbe::P2pRing({0, 1, 2, 3}, kCopyBytes),
                   53);
}

TEST_F(Ac922Test, DeviceLocalCopyFasterThanP2p) {
  // Section 5.2: device-local copies are ~5x faster than 3x NVLink 2.0.
  auto local = probe_.Run({TransferProbe::DtoD(0, kCopyBytes)});
  auto p2p = probe_.Run({TransferProbe::PtoP(0, 1, kCopyBytes)});
  ASSERT_TRUE(local.ok() && p2p.ok());
  const double ratio =
      local->aggregate_throughput / p2p->aggregate_throughput;
  EXPECT_NEAR(ratio, 5.0, 1.5);
}

// ---------------------------------------------------------------------------
// DELTA D22x (Figs. 3 & 6)
// ---------------------------------------------------------------------------

class DeltaTest : public ::testing::Test {
 protected:
  TransferProbe probe_{MakeDeltaD22x()};
};

TEST_F(DeltaTest, SerialHtoD12) {
  ExpectThroughput(probe_, {TransferProbe::HtoD(0, kCopyBytes)}, 12);
  ExpectThroughput(probe_, {TransferProbe::HtoD(2, kCopyBytes)}, 12);
}

TEST_F(DeltaTest, SerialDtoH13) {
  ExpectThroughput(probe_, {TransferProbe::DtoH(0, kCopyBytes)}, 13);
}

TEST_F(DeltaTest, SerialBidi20) {
  ExpectThroughput(probe_, TransferProbe::Bidirectional({0}, kCopyBytes), 20);
  ExpectThroughput(probe_, TransferProbe::Bidirectional({2}, kCopyBytes), 20);
}

TEST_F(DeltaTest, ParallelScalesLinearly) {
  std::vector<TransferOp> htod4, dtoh4;
  for (int g = 0; g < 4; ++g) {
    htod4.push_back(TransferProbe::HtoD(g, kCopyBytes));
    dtoh4.push_back(TransferProbe::DtoH(g, kCopyBytes));
  }
  ExpectThroughput(probe_, htod4, 49);
  ExpectThroughput(probe_, dtoh4, 51);
  ExpectThroughput(probe_,
                   TransferProbe::Bidirectional({0, 1, 2, 3}, kCopyBytes), 79);
}

TEST_F(DeltaTest, SerialP2pDirect48) {
  ExpectThroughput(probe_, {TransferProbe::PtoP(0, 1, kCopyBytes)}, 48);
  ExpectThroughput(probe_, {TransferProbe::PtoP(0, 2, kCopyBytes)}, 48);
}

TEST_F(DeltaTest, SerialP2pHostTraversing9) {
  ExpectThroughput(probe_, {TransferProbe::PtoP(0, 3, kCopyBytes)}, 9);
}

TEST_F(DeltaTest, ParallelP2pDirectPair97) {
  ExpectThroughput(probe_, TransferProbe::P2pRing({0, 1}, kCopyBytes), 97);
  ExpectThroughput(probe_, TransferProbe::P2pRing({2, 3}, kCopyBytes), 97);
}

TEST_F(DeltaTest, ParallelP2pFourGpus30) {
  ExpectThroughput(probe_, TransferProbe::P2pRing({0, 1, 2, 3}, kCopyBytes),
                   30, 0.25);
}

TEST_F(DeltaTest, DirectP2pDetection) {
  EXPECT_TRUE(*probe_.topology().IsDirectP2p(0, 1));
  EXPECT_TRUE(*probe_.topology().IsDirectP2p(0, 2));
  EXPECT_TRUE(*probe_.topology().IsDirectP2p(1, 3));
  EXPECT_FALSE(*probe_.topology().IsDirectP2p(0, 3));
  EXPECT_FALSE(*probe_.topology().IsDirectP2p(1, 2));
}

// ---------------------------------------------------------------------------
// NVIDIA DGX A100 (Figs. 4 & 7)
// ---------------------------------------------------------------------------

class DgxTest : public ::testing::Test {
 protected:
  TransferProbe probe_{MakeDgxA100()};
};

TEST_F(DgxTest, SerialHtoD24) {
  ExpectThroughput(probe_, {TransferProbe::HtoD(0, kCopyBytes)}, 24);
  ExpectThroughput(probe_, {TransferProbe::HtoD(5, kCopyBytes)}, 24);
}

TEST_F(DgxTest, SerialBidiLocal39) {
  ExpectThroughput(probe_, TransferProbe::Bidirectional({0}, kCopyBytes), 39);
}

TEST_F(DgxTest, SerialBidiRemote32) {
  ExpectThroughput(probe_, TransferProbe::Bidirectional({4}, kCopyBytes), 32);
}

TEST_F(DgxTest, PairSharingOneSwitch25) {
  // GPUs (0,1) share a PCIe switch: no scaling.
  ExpectThroughput(
      probe_,
      {TransferProbe::HtoD(0, kCopyBytes), TransferProbe::HtoD(1, kCopyBytes)},
      25);
}

TEST_F(DgxTest, PairOnDistinctSwitches49) {
  ExpectThroughput(
      probe_,
      {TransferProbe::HtoD(0, kCopyBytes), TransferProbe::HtoD(2, kCopyBytes)},
      49);
  ExpectThroughput(
      probe_,
      {TransferProbe::HtoD(4, kCopyBytes), TransferProbe::HtoD(6, kCopyBytes)},
      47);
}

TEST_F(DgxTest, QuadDistinctSwitches87) {
  std::vector<TransferOp> ops;
  for (int g : {0, 2, 4, 6}) ops.push_back(TransferProbe::HtoD(g, kCopyBytes));
  ExpectThroughput(probe_, ops, 87, 0.20);
}

TEST_F(DgxTest, EightGpusNoFurtherScaling) {
  std::vector<TransferOp> quad, octet;
  for (int g : {0, 2, 4, 6}) quad.push_back(TransferProbe::HtoD(g, kCopyBytes));
  for (int g = 0; g < 8; ++g) octet.push_back(TransferProbe::HtoD(g, kCopyBytes));
  auto q = probe_.Run(quad);
  auto o = probe_.Run(octet);
  ASSERT_TRUE(q.ok() && o.ok());
  EXPECT_LT(o->aggregate_throughput / q->aggregate_throughput, 1.25)
      << "Fig. 4: throughput must not scale from 4 to 8 GPUs";
}

TEST_F(DgxTest, RemoteBidiPair61) {
  ExpectThroughput(probe_, TransferProbe::Bidirectional({4, 6}, kCopyBytes),
                   61, 0.20);
}

TEST_F(DgxTest, LocalBidiPair82) {
  ExpectThroughput(probe_, TransferProbe::Bidirectional({0, 2}, kCopyBytes),
                   82, 0.20);
}

TEST_F(DgxTest, EightGpuBidi111) {
  std::vector<int> all{0, 1, 2, 3, 4, 5, 6, 7};
  ExpectThroughput(probe_, TransferProbe::Bidirectional(all, kCopyBytes), 111,
                   0.25);
}

TEST_F(DgxTest, SerialP2p279) {
  ExpectThroughput(probe_, {TransferProbe::PtoP(0, 1, kCopyBytes)}, 279);
  ExpectThroughput(probe_, {TransferProbe::PtoP(3, 6, kCopyBytes)}, 279);
}

TEST_F(DgxTest, ParallelP2pPair530) {
  ExpectThroughput(probe_, TransferProbe::P2pRing({0, 1}, kCopyBytes), 530);
}

TEST_F(DgxTest, ParallelP2pQuad1060) {
  ExpectThroughput(probe_, TransferProbe::P2pRing({0, 2, 4, 6}, kCopyBytes),
                   1060);
}

TEST_F(DgxTest, ParallelP2pAllEight2116) {
  std::vector<int> all{0, 1, 2, 3, 4, 5, 6, 7};
  ExpectThroughput(probe_, TransferProbe::P2pRing(all, kCopyBytes), 2116);
}

TEST_F(DgxTest, AllPairsAreDirectP2p) {
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_TRUE(*probe_.topology().IsDirectP2p(a, b))
          << "NVSwitch connects all pairs directly (" << a << "," << b << ")";
    }
  }
}

TEST_F(DgxTest, DeviceLocalCopy3xFasterThanNvswitchP2p) {
  auto local = probe_.Run({TransferProbe::DtoD(0, kCopyBytes)});
  auto p2p = probe_.Run({TransferProbe::PtoP(0, 1, kCopyBytes)});
  ASSERT_TRUE(local.ok() && p2p.ok());
  EXPECT_NEAR(local->aggregate_throughput / p2p->aggregate_throughput, 3.0,
              0.7);
}

// ---------------------------------------------------------------------------
// Cross-system claims (abstract / Section 4 conclusions)
// ---------------------------------------------------------------------------

TEST(CrossSystemTest, NvswitchBeatsPcie3By35xForFourGpuP2p) {
  TransferProbe dgx(MakeDgxA100());
  TransferProbe delta(MakeDeltaD22x());
  auto fast = dgx.Run(TransferProbe::P2pRing({0, 2, 4, 6}, kCopyBytes));
  auto slow = delta.Run(TransferProbe::P2pRing({0, 1, 2, 3}, kCopyBytes));
  ASSERT_TRUE(fast.ok() && slow.ok());
  const double ratio =
      fast->aggregate_throughput / slow->aggregate_throughput;
  EXPECT_NEAR(ratio, 35.3, 35.3 * 0.25);
}

TEST(CrossSystemTest, Nvlink2AcceleratesCpuGpu6xOverPcie3) {
  TransferProbe ac922(MakeAc922());
  TransferProbe delta(MakeDeltaD22x());
  auto fast = ac922.Run({TransferProbe::HtoD(0, kCopyBytes)});
  auto slow = delta.Run({TransferProbe::HtoD(0, kCopyBytes)});
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_NEAR(fast->aggregate_throughput / slow->aggregate_throughput, 6.0,
              1.0);
}

TEST(CrossSystemTest, MakeSystemRegistry) {
  for (const auto& name : SystemNames()) {
    auto topo = MakeSystem(name);
    ASSERT_TRUE(topo.ok()) << name;
    EXPECT_GT((*topo)->num_gpus(), 0);
  }
  EXPECT_FALSE(MakeSystem("dgx-h100").ok());
}

TEST(CrossSystemTest, SystemShapes) {
  EXPECT_EQ(MakeAc922()->num_gpus(), 4);
  EXPECT_EQ(MakeDeltaD22x()->num_gpus(), 4);
  EXPECT_EQ(MakeDgxA100()->num_gpus(), 8);
  EXPECT_EQ(MakeDgxA100()->gpu_socket(3), 0);
  EXPECT_EQ(MakeDgxA100()->gpu_socket(4), 1);
}

}  // namespace
}  // namespace mgs::topo
