// Tests for the execution tracer (sim/trace.h) and its vgpu integration.

#include "sim/trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "topo/systems.h"
#include "vgpu/platform.h"

namespace mgs::sim {
namespace {

TEST(TraceTest, RecordsSpans) {
  TraceRecorder trace;
  trace.AddSpan("GPU0:in", "HtoD 4.00 GB", 0.0, 0.16);
  trace.AddSpan("CPU", "cpu-merge", 0.16, 0.36);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.spans()[0].track, "GPU0:in");
  EXPECT_DOUBLE_EQ(trace.spans()[1].end, 0.36);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceTest, ChromeJsonShape) {
  TraceRecorder trace;
  trace.AddSpan("t0", "op \"quoted\"", 1.0, 2.0);
  const std::string json = trace.ToChromeTraceJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000000"), std::string::npos);
}

TEST(TraceTest, TimestampsRoundTripAtFullPrecision) {
  // Regression: the default 6-significant-digit stream precision used to
  // truncate microsecond timestamps ("ts":1e+06), collapsing events past
  // ~1 simulated second onto coarse ticks. max_digits10 output must parse
  // back to exactly the recorded value.
  TraceRecorder trace;
  const double begin = 1.2345678901234567;  // needs all 17 digits
  const double end = begin + 1e-9;          // a 1 ns span
  trace.AddSpan("t0", "op", begin, end);
  const std::string json = trace.ToChromeTraceJson();

  const std::string ts_key = "\"ts\":";
  const auto at = json.find(ts_key);
  ASSERT_NE(at, std::string::npos);
  const double ts = std::stod(json.substr(at + ts_key.size()));
  EXPECT_EQ(ts, begin * 1e6);

  const std::string dur_key = "\"dur\":";
  const auto dur_at = json.find(dur_key);
  ASSERT_NE(dur_at, std::string::npos);
  const double dur = std::stod(json.substr(dur_at + dur_key.size()));
  EXPECT_EQ(dur, (end - begin) * 1e6);
  EXPECT_GT(dur, 0);  // the span must not collapse to zero width
}

TEST(TraceTest, WriteToFile) {
  TraceRecorder trace;
  trace.AddSpan("a", "x", 0, 1);
  const auto path =
      (std::filesystem::temp_directory_path() / "mgs_trace.json").string();
  ASSERT_TRUE(trace.WriteChromeTrace(path).ok());
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, trace.ToChromeTraceJson());
  std::filesystem::remove(path);
  EXPECT_FALSE(trace.WriteChromeTrace("/no/such/dir/t.json").ok());
}

TEST(TraceTest, PlatformRecordsCopyKernelAndCpuSpans) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  TraceRecorder trace;
  platform->SetTrace(&trace);
  auto& dev = platform->device(0);
  vgpu::HostBuffer<std::int32_t> host(1024);
  auto buf = CheckOk(dev.Allocate<std::int32_t>(1024));
  auto& stream = dev.stream(0);
  stream.MemcpyHtoDAsync(buf, 0, host, 0, 1024);
  stream.LaunchAsync(0.01, [] {}, "my-kernel");
  stream.MemcpyDtoHAsync(host, 0, buf, 0, 1024);
  auto root = [&]() -> Task<void> {
    co_await stream.Synchronize();
    co_await platform->CpuBusy(0.5);
    co_await platform->CpuMemoryWork(0, 1e9, 2.0, 1.0);
  };
  CheckOk(platform->Run(root()).status());
  ASSERT_EQ(trace.size(), 5u);
  std::vector<std::string> tracks;
  for (const auto& span : trace.spans()) tracks.push_back(span.track);
  EXPECT_EQ(tracks[0], "GPU0:in");
  EXPECT_EQ(tracks[1], "GPU0:compute");
  EXPECT_EQ(trace.spans()[1].name, "my-kernel");
  EXPECT_EQ(tracks[2], "GPU0:out");
  EXPECT_EQ(tracks[3], "CPU");
  EXPECT_EQ(tracks[4], "CPU");
  // Spans are ordered and non-negative.
  for (const auto& span : trace.spans()) {
    EXPECT_GE(span.end, span.begin);
  }
}

TEST(TraceTest, DetachStopsRecording) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  TraceRecorder trace;
  platform->SetTrace(&trace);
  platform->SetTrace(nullptr);
  auto root = [&]() -> Task<void> { co_await platform->CpuBusy(0.1); };
  CheckOk(platform->Run(root()).status());
  EXPECT_EQ(trace.size(), 0u);
}

}  // namespace
}  // namespace mgs::sim
