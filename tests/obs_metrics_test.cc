// Tests for the metrics registry (obs/metrics.h): label normalization,
// handle identity, histogram bucket semantics, shard merging.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mgs::obs {
namespace {

TEST(CounterTest, MonotoneAndIgnoresNegative) {
  Counter c;
  c.Add(2.5);
  c.Inc();
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  c.Add(-10.0);  // counters never go down
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  c.Add(0.0);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(7);
  g.Add(-3);
  EXPECT_DOUBLE_EQ(g.value(), 4);
  g.Set(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 0.5);
}

TEST(FormatLabelsTest, CanonicalForm) {
  EXPECT_EQ(FormatLabels({}), "");
  EXPECT_EQ(FormatLabels({{"gpu", "0"}}), "{gpu=\"0\"}");
  EXPECT_EQ(FormatLabels({{"a", "x"}, {"b", "y"}}), "{a=\"x\",b=\"y\"}");
}

TEST(FormatLabelsTest, EscapesSpecialCharacters) {
  const std::string out = FormatLabels({{"k", "a\"b\\c"}});
  EXPECT_EQ(out, "{k=\"a\\\"b\\\\c\"}");
}

TEST(RegistryTest, LabelOrderNormalized) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("m", {{"x", "1"}, {"y", "2"}});
  Counter& b = registry.GetCounter("m", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);  // same series regardless of label order
  a.Inc();
  EXPECT_DOUBLE_EQ(registry.CounterValue("m", {{"y", "2"}, {"x", "1"}}), 1);
}

TEST(RegistryTest, HandlesAreStable) {
  MetricsRegistry registry;
  Counter& first = registry.GetCounter("c", {{"k", "v"}});
  for (int i = 0; i < 100; ++i) {
    // Creating unrelated series must not invalidate earlier handles.
    registry.GetCounter("c", {{"k", std::to_string(i)}});
  }
  EXPECT_EQ(&first, &registry.GetCounter("c", {{"k", "v"}}));
}

TEST(RegistryTest, DistinctLabelsAreDistinctSeries) {
  MetricsRegistry registry;
  registry.GetCounter("c", {{"gpu", "0"}}).Add(1);
  registry.GetCounter("c", {{"gpu", "1"}}).Add(2);
  EXPECT_DOUBLE_EQ(registry.CounterValue("c", {{"gpu", "0"}}), 1);
  EXPECT_DOUBLE_EQ(registry.CounterValue("c", {{"gpu", "1"}}), 2);
  EXPECT_DOUBLE_EQ(registry.CounterValue("c", {{"gpu", "2"}}), 0);  // absent
  const auto* family = registry.FindFamily("c");
  ASSERT_NE(family, nullptr);
  EXPECT_EQ(family->counters.size(), 2u);
}

TEST(RegistryTest, ValueLookupsDoNotCreateSeries) {
  MetricsRegistry registry;
  EXPECT_DOUBLE_EQ(registry.CounterValue("nope"), 0);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("nope"), 0);
  EXPECT_EQ(registry.num_families(), 0u);
}

TEST(RegistryTest, FamiliesIterateInNameOrder) {
  MetricsRegistry registry;
  registry.GetCounter("zzz");
  registry.GetGauge("aaa");
  registry.GetHistogram("mmm");
  std::vector<std::string> names;
  for (const auto& [name, family] : registry.families()) {
    names.push_back(name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"aaa", "mmm", "zzz"}));
}

TEST(HistogramTest, LogSpacedBounds) {
  Histogram h(HistogramOptions{1e-6, 4.0, 20});
  ASSERT_EQ(h.num_buckets(), 20u);
  EXPECT_DOUBLE_EQ(h.UpperBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(h.UpperBound(1), 4e-6);
  EXPECT_DOUBLE_EQ(h.UpperBound(2), 1.6e-5);
  EXPECT_EQ(h.UpperBound(20), std::numeric_limits<double>::infinity());
}

TEST(HistogramTest, LeSemantics) {
  // Prometheus `le` semantics: an observation lands in the first bucket
  // whose upper bound is >= it.
  Histogram h(HistogramOptions{1.0, 2.0, 3});  // bounds 1, 2, 4, +Inf
  h.Observe(1.0);   // == bound 1 -> bucket 0
  h.Observe(1.5);   // bucket 1
  h.Observe(4.0);   // == bound 4 -> bucket 2
  h.Observe(100.0); // overflow
  h.Observe(0.0);   // below the first bound -> bucket 0
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.CumulativeCount(0), 2u);
  EXPECT_EQ(h.CumulativeCount(2), 4u);
  EXPECT_EQ(h.CumulativeCount(3), 5u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(RegistryTest, HistogramOptionsStickToFamily) {
  MetricsRegistry registry;
  HistogramOptions opts{0.001, 10.0, 5};
  Histogram& h = registry.GetHistogram("h", {}, "", opts);
  EXPECT_EQ(h.num_buckets(), 5u);
  // A second lookup returns the same histogram.
  EXPECT_EQ(&h, &registry.GetHistogram("h", {}, "", opts));
}

TEST(RegistryTest, MergeFromAccumulatesCountersAndHistograms) {
  MetricsRegistry main;
  main.GetCounter("c", {{"k", "a"}}).Add(1);
  main.GetGauge("g").Set(10);
  main.GetHistogram("h").Observe(0.5);

  MetricsRegistry shard;
  shard.GetCounter("c", {{"k", "a"}}).Add(2);
  shard.GetCounter("c", {{"k", "b"}}).Add(5);
  shard.GetGauge("g").Set(99);
  shard.GetHistogram("h").Observe(0.25);
  shard.GetHistogram("h").Observe(0.75);

  main.MergeFrom(shard);
  EXPECT_DOUBLE_EQ(main.CounterValue("c", {{"k", "a"}}), 3);
  EXPECT_DOUBLE_EQ(main.CounterValue("c", {{"k", "b"}}), 5);
  EXPECT_DOUBLE_EQ(main.GaugeValue("g"), 99);  // gauges: last writer wins
  const Histogram& h = main.GetHistogram("h");
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.5);
}

TEST(RegistryTest, ClearEmptiesEverything) {
  MetricsRegistry registry;
  registry.GetCounter("c").Inc();
  registry.Clear();
  EXPECT_EQ(registry.num_families(), 0u);
  EXPECT_DOUBLE_EQ(registry.CounterValue("c"), 0);
}

}  // namespace
}  // namespace mgs::obs
