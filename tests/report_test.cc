#include "util/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace mgs {
namespace {

TEST(ReportTest, NumFormatsPrecision) {
  EXPECT_EQ(ReportTable::Num(1.234567), "1.23");
  EXPECT_EQ(ReportTable::Num(1.2, 3), "1.200");
  EXPECT_EQ(ReportTable::Num(72, 0), "72");
}

TEST(ReportTest, RowsArePaddedToColumnCount) {
  ReportTable t("t", {"a", "b", "c"});
  t.AddRow({"1"});
  ASSERT_EQ(t.rows().size(), 1u);
  EXPECT_EQ(t.rows()[0].size(), 3u);
}

TEST(ReportTest, WriteCsvRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "mgs_report_test";
  std::filesystem::create_directories(dir);
  ReportTable t("Fig 2a: CPU-GPU serial", {"gpu", "HtoD [GB/s]"});
  t.AddRow({"{0,1}", "72.0"});
  t.AddRow({"{2,3}", "41.0"});
  auto path = t.WriteCsv(dir.string());
  ASSERT_TRUE(path.has_value());
  std::ifstream f(*path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "gpu,HtoD [GB/s]");
  std::getline(f, line);
  EXPECT_EQ(line, "\"{0,1}\",72.0");
  std::filesystem::remove_all(dir);
}

TEST(ReportTest, WriteCsvToBadDirFails) {
  ReportTable t("x", {"a"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent/dir/zzz").has_value());
}

TEST(ReportTest, TitleSlugInPath) {
  const auto dir = std::filesystem::temp_directory_path() / "mgs_report_slug";
  std::filesystem::create_directories(dir);
  ReportTable t("Figure 12 (a): P2P sort!", {"a"});
  auto path = t.WriteCsv(dir.string());
  ASSERT_TRUE(path.has_value());
  EXPECT_NE(path->find("figure_12_a_p2p_sort.csv"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mgs
