// Pageable vs pinned host memory (Section 4.2: "pinned memory copies
// utilize substantially higher transfer rates").

#include <gtest/gtest.h>

#include "topo/systems.h"
#include "util/units.h"
#include "vgpu/platform.h"

namespace mgs::vgpu {
namespace {

double TimeHtoD(bool pinned) {
  auto p = CheckOk(Platform::Create(topo::MakeDgxA100(),
                                    PlatformOptions{1e6}));
  auto& dev = p->device(0);
  HostBuffer<std::int32_t> host(1000, /*numa_node=*/0, pinned);
  auto buf = CheckOk(dev.Allocate<std::int32_t>(1000));
  dev.stream(0).MemcpyHtoDAsync(buf, 0, host, 0, 1000);  // 4 GB logical
  auto root = [&]() -> sim::Task<void> {
    co_await dev.stream(0).Synchronize();
  };
  return CheckOk(p->Run(root()));
}

TEST(PinnedMemoryTest, PageableCopiesAreSlower) {
  const double pinned = TimeHtoD(true);
  const double pageable = TimeHtoD(false);
  EXPECT_NEAR(pageable / pinned, kPageableCopyWeight, 1e-3)
      << "staging through the driver's bounce buffer costs bandwidth";
}

TEST(PinnedMemoryTest, DefaultsToPinned) {
  HostBuffer<std::int32_t> buffer(10);
  EXPECT_TRUE(buffer.pinned());
  HostBuffer<std::int32_t> pageable(10, 0, false);
  EXPECT_FALSE(pageable.pinned());
}

TEST(PinnedMemoryTest, DataStillArrivesIntact) {
  auto p = CheckOk(Platform::Create(topo::MakeAc922()));
  auto& dev = p->device(0);
  HostBuffer<std::int32_t> in(100, 0, /*pinned=*/false), out(100);
  for (int i = 0; i < 100; ++i) in[i] = i * 3;
  auto buf = CheckOk(dev.Allocate<std::int32_t>(100));
  dev.stream(0).MemcpyHtoDAsync(buf, 0, in, 0, 100);
  dev.stream(0).MemcpyDtoHAsync(out, 0, buf, 0, 100);
  auto root = [&]() -> sim::Task<void> {
    co_await dev.stream(0).Synchronize();
  };
  CheckOk(p->Run(root()).status());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * 3);
}

}  // namespace
}  // namespace mgs::vgpu
