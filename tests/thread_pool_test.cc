#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mgs {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(10000, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(
      10, [&](std::int64_t b, std::int64_t e) {
        ++calls;
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 10);
      },
      1024);
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelSum) {
  ThreadPool pool(4);
  std::vector<std::int64_t> data(100000);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<std::int64_t> total{0};
  pool.ParallelFor(static_cast<std::int64_t>(data.size()),
                   [&](std::int64_t b, std::int64_t e) {
                     std::int64_t local = 0;
                     for (std::int64_t i = b; i < e; ++i) local += data[i];
                     total.fetch_add(local);
                   });
  EXPECT_EQ(total.load(), 100000LL * 99999 / 2);
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] {
    count.fetch_add(1);
    pool.Submit([&] { count.fetch_add(1); });
  });
  // Wait may need two rounds: loop until stable.
  for (int i = 0; i < 10 && count.load() < 2; ++i) pool.Wait();
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, DefaultPoolSingleton) {
  EXPECT_EQ(ThreadPool::Default(), ThreadPool::Default());
}

}  // namespace
}  // namespace mgs
