// Distributed sort over the cluster fabric: end-to-end correctness, shuffle
// volume, duplicate-heavy splitting, cross-node determinism under faults
// (same seed + fault plan => bitwise-identical output and metrics), incast /
// oversubscription invariants against the flow-settler oracle, and explain
// attribution of an oversubscribed spine.

#include "net/distributed_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault/injector.h"
#include "fault/scenario.h"
#include "net/cluster.h"
#include "obs/explain.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "sim/flow_network.h"
#include "sim/simulator.h"
#include "util/datagen.h"
#include "vgpu/platform.h"

namespace mgs::net {
namespace {

ClusterOptions SmallDelta(int nodes, double oversub) {
  ClusterOptions options;
  options.node_system = "delta-d22x";  // 4 GPUs/node keeps tests fast
  options.nodes = nodes;
  options.nodes_per_rack = 2;
  options.oversubscription = oversub;
  return options;
}

Result<std::unique_ptr<vgpu::Platform>> MakeClusterPlatform(
    const ClusterOptions& options, ClusterInfo* info, double scale = 1.0) {
  auto cluster = BuildCluster(options);
  MGS_RETURN_IF_ERROR(cluster.status());
  *info = cluster->info;
  vgpu::PlatformOptions popts;
  popts.scale = scale;
  return vgpu::Platform::Create(std::move(cluster->topology), popts);
}

TEST(DistributedSortTest, EndToEndSorted) {
  ClusterInfo info;
  auto platform = MakeClusterPlatform(SmallDelta(4, 2.0), &info);
  ASSERT_TRUE(platform.ok()) << platform.status().ToString();

  const std::int64_t n = 200'000;
  DataGenOptions gen;
  gen.seed = 7;
  vgpu::HostBuffer<std::int32_t> data(GenerateKeys<std::int32_t>(n, gen));

  auto stats = DistributedSort((*platform).get(), info, &data,
                               DistSortOptions{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(std::is_sorted(data.data(), data.data() + n));
  EXPECT_EQ(stats->nodes, 4);
  EXPECT_EQ(stats->num_gpus, 16);
  EXPECT_EQ(stats->keys, n);
  EXPECT_EQ(stats->algorithm, "DIST sort");
  EXPECT_GT(stats->total_seconds, 0);
  EXPECT_GT(stats->phases.htod, 0);
  EXPECT_GT(stats->phases.sort, 0);
  EXPECT_GT(stats->phases.merge, 0);
  EXPECT_GT(stats->phases.dtoh, 0);

  // Shuffle moves everything except what stays put; with 4 nodes the
  // cross-node share should be close to (N-1)/N = 75% of the data.
  const double total_bytes = static_cast<double>(n) * sizeof(std::int32_t);
  EXPECT_GT(stats->shuffle_bytes, 0.85 * total_bytes);
  EXPECT_LE(stats->shuffle_bytes, 1.0001 * total_bytes);
  EXPECT_GT(stats->cross_node_bytes, 0.60 * total_bytes);
  EXPECT_LT(stats->cross_node_bytes, 0.90 * total_bytes);
}

TEST(DistributedSortTest, NodeSubsetAndScale) {
  ClusterInfo info;
  auto platform = MakeClusterPlatform(SmallDelta(4, 1.0), &info,
                                      /*scale=*/100.0);
  ASSERT_TRUE(platform.ok());

  const std::int64_t n = 50'000;
  DataGenOptions gen;
  gen.seed = 3;
  vgpu::HostBuffer<std::int32_t> data(GenerateKeys<std::int32_t>(n, gen));

  DistSortOptions options;
  options.node_set = {0, 2};  // non-adjacent nodes, different racks
  auto stats = DistributedSort((*platform).get(), info, &data, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(std::is_sorted(data.data(), data.data() + n));
  EXPECT_EQ(stats->nodes, 2);
  EXPECT_EQ(stats->num_gpus, 8);
  EXPECT_EQ(stats->keys, n * 100);
}

TEST(DistributedSortTest, DuplicateHeavyInputStaysBalanced) {
  ClusterInfo info;
  auto platform = MakeClusterPlatform(SmallDelta(2, 1.0), &info);
  ASSERT_TRUE(platform.ok());

  // All-equal keys: value-based splitting alone would funnel everything
  // into one receiver; balanced equal-range splitting must spread it.
  const std::int64_t n = 64'000;
  vgpu::HostBuffer<std::int32_t> data(
      std::vector<std::int32_t>(static_cast<std::size_t>(n), 42));
  auto stats = DistributedSort((*platform).get(), info, &data,
                               DistSortOptions{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(std::is_sorted(data.data(), data.data() + n));
  for (std::int64_t i = 0; i < n; ++i) ASSERT_EQ(data[i], 42);
}

// Satellite: cross-node determinism. The same seed and fault plan over a
// 4-node cluster must produce bitwise-identical sorted output and identical
// metric counters across two fresh runs.
TEST(DistributedSortTest, DeterministicUnderFaults) {
  const char* kPlan =
      "at=0.0005 link=nic1 down; at=0.004 link=nic1 up; "
      "at=0.0002 copy-error rate=0.05 until=0.006; "
      "at=0.001 link=spine0 factor=0.5; at=0.005 link=spine0 factor=1.0";

  auto run = [&](std::vector<std::int32_t>* out_keys,
                 std::string* out_metrics, double* out_seconds) {
    ClusterInfo info;
    auto platform = MakeClusterPlatform(SmallDelta(4, 2.0), &info);
    ASSERT_TRUE(platform.ok());
    obs::MetricsRegistry registry;
    (*platform)->SetMetrics(&registry);

    auto scenario = fault::FaultScenario::Parse(kPlan);
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    fault::FaultInjector injector((*platform).get(), std::move(*scenario),
                                  /*seed_mix=*/5);
    ASSERT_TRUE(injector.Arm().ok());

    const std::int64_t n = 120'000;
    DataGenOptions gen;
    gen.seed = 11;
    vgpu::HostBuffer<std::int32_t> data(
        GenerateKeys<std::int32_t>(n, gen));
    auto stats = DistributedSort((*platform).get(), info, &data,
                                 DistSortOptions{});
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_TRUE(std::is_sorted(data.data(), data.data() + n));

    obs::SyncFlowMetrics(&(*platform)->network(), (*platform)->topology(),
                         (*platform)->simulator().Now(), &registry);
    *out_keys = data.vector();
    *out_metrics = obs::ToPrometheusText(registry);
    *out_seconds = stats->total_seconds;
  };

  std::vector<std::int32_t> keys_a, keys_b;
  std::string metrics_a, metrics_b;
  double seconds_a = 0, seconds_b = 0;
  run(&keys_a, &metrics_a, &seconds_a);
  run(&keys_b, &metrics_b, &seconds_b);

  EXPECT_EQ(keys_a, keys_b);
  EXPECT_EQ(seconds_a, seconds_b);  // exact: same event sequence
  EXPECT_EQ(metrics_a, metrics_b);
}

// Satellite: incast invariant. A 2:1-oversubscribed spine must never exceed
// 100% occupancy — max-min fairness shares it, it does not overcommit.
TEST(DistributedSortTest, OversubscribedSpineNeverExceedsCapacity) {
  ClusterInfo info;
  auto platform = MakeClusterPlatform(SmallDelta(4, 2.0), &info);
  ASSERT_TRUE(platform.ok());

  const std::int64_t n = 100'000;
  DataGenOptions gen;
  gen.seed = 23;
  vgpu::HostBuffer<std::int32_t> data(GenerateKeys<std::int32_t>(n, gen));
  auto stats = DistributedSort((*platform).get(), info, &data,
                               DistSortOptions{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  auto& net = (*platform)->network();
  net.SettleTraffic();
  for (const auto& [name, utilization] :
       net.Utilizations(/*since_seconds=*/0.0)) {
    EXPECT_LE(utilization, 1.0 + 1e-9) << name;
  }
}

// Satellite: the incremental flow settler and the reference progressive-
// filling oracle must agree on a randomized 8-node cluster: identical
// shuffle completion order and finish times.
TEST(DistributedSortTest, ShuffleCompletionMatchesFlowOracle) {
  const auto run_flows = [](bool use_reference)
      -> std::vector<std::pair<int, double>> {
    ClusterOptions options;
    options.node_system = "delta-d22x";
    options.nodes = 8;
    options.nodes_per_rack = 3;
    options.oversubscription = 2.0;
    auto cluster = BuildCluster(options);
    EXPECT_TRUE(cluster.ok());
    sim::Simulator simulator;
    sim::FlowNetwork net(&simulator);
    net.set_use_reference_allocator_for_testing(use_reference);
    EXPECT_TRUE(cluster->topology->Compile(&net).ok());

    // Deterministic pseudo-random all-to-all flow set between node pairs.
    std::vector<std::pair<int, double>> completions;  // (flow idx, time)
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    const auto next = [&state]() {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    int idx = 0;
    for (int a = 0; a < 8; ++a) {
      for (int b = 0; b < 8; ++b) {
        if (a == b) continue;
        const int src = cluster->info.FirstGpu(a) +
                        static_cast<int>(next() % 4);
        const int dst = cluster->info.FirstGpu(b) +
                        static_cast<int>(next() % 4);
        auto path = cluster->topology->CopyPath(
            topo::CopyKind::kPeerToPeer, topo::Endpoint::Gpu(src),
            topo::Endpoint::Gpu(dst));
        EXPECT_TRUE(path.ok());
        const double bytes = 1e6 + static_cast<double>(next() % 1000) * 1e5;
        const int flow = idx++;
        net.StartFlow(bytes, *path, [flow, &completions, &simulator] {
          completions.emplace_back(flow, simulator.Now());
        });
      }
    }
    simulator.Run();
    return completions;
  };

  const auto incremental = run_flows(false);
  const auto reference = run_flows(true);
  ASSERT_EQ(incremental.size(), 56u);
  EXPECT_EQ(incremental, reference);
}

// Acceptance: at oversubscription >= 2:1 the explain report must blame a
// spine uplink as the top saturated link.
TEST(DistributedSortTest, ExplainBlamesOversubscribedSpine) {
  // DGX nodes: the NIC hangs off the NVSwitch (GPUDirect-style), so the
  // shuffle bypasses PCIe and the spine is the only scarce fabric stage.
  ClusterOptions copts;
  copts.node_system = "dgx-a100";
  copts.nodes = 4;
  copts.nodes_per_rack = 2;
  copts.oversubscription = 4.0;
  ClusterInfo info;
  auto platform = MakeClusterPlatform(copts, &info);
  ASSERT_TRUE(platform.ok());
  obs::MetricsRegistry registry;
  (*platform)->SetMetrics(&registry);

  const std::int64_t n = 150'000;
  DataGenOptions gen;
  gen.seed = 31;
  vgpu::HostBuffer<std::int32_t> data(GenerateKeys<std::int32_t>(n, gen));
  auto stats = DistributedSort((*platform).get(), info, &data,
                               DistSortOptions{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  obs::SyncFlowMetrics(&(*platform)->network(), (*platform)->topology(),
                       (*platform)->simulator().Now(), &registry);
  auto report = obs::BuildExplainReport(registry, {});
  ASSERT_FALSE(report.links.empty());
  EXPECT_NE(report.links.front().name.find("spine"), std::string::npos)
      << "top link was " << report.links.front().name;
}

}  // namespace
}  // namespace mgs::net
