// Property tests for variable-length string keys: the 8-byte normalized
// prefix plus cold-path tie-break must equal full lexicographic order on
// adversarial inputs (shared prefixes past 8 bytes, embedded NULs, empty
// strings), and every sorter — comparison, radix (with the prefix-tie
// fix-up), and the multi-GPU paths — must agree with a reference sort of
// the underlying strings.

#include "core/string_key.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "core/keygen.h"
#include "core/p2p_sort.h"
#include "core/het_sort.h"
#include "core/gpu_set.h"
#include "cpusort/lsb_radix_sort.h"
#include "cpusort/paradis_sort.h"
#include "topo/systems.h"
#include "util/datagen.h"

namespace mgs::core {
namespace {

using cpusort::LsbRadixSort;
using cpusort::ParadisSort;

/// Adversarial corpus: everything that stresses the prefix boundary.
std::vector<std::string> AdversarialStrings() {
  std::vector<std::string> out = {
      "",                          // empty
      std::string(1, '\0'),        // single NUL
      std::string(8, '\0'),        // all-NUL prefix, length 8
      std::string(9, '\0'),        // all-NUL prefix, longer than 8
      "a",
      "ab",
      "abcdefgh",                  // exactly prefix-sized
      "abcdefgha",                 // extends the previous by one byte
      "abcdefghz",
      "abcdefgh\x01",
      std::string("abcdefgh") + std::string(1, '\0'),  // NUL in byte 9
      "abcdefg",                   // one short of the prefix
      "sharedprefix-0123456789",   // shared >8-byte prefixes ...
      "sharedprefix-0123456790",
      "sharedprefix-01234567",
      "sharedprefix-",
      std::string("emb\0edded", 9),      // NUL inside the prefix
      std::string("emb\0edded!", 10),
      std::string("embedded-nul-after-prefix\0x", 27),
      std::string("embedded-nul-after-prefix\0y", 27),
      "\x7f\x7f\x7f\x7f\x7f\x7f\x7f\x7f\x7f",
      "zzzzzzzzzzzzzzzz",
  };
  // Duplicates: equal keys must compare equivalent, not less.
  out.push_back("sharedprefix-0123456789");
  out.push_back("");
  return out;
}

TEST(StringKeyOrder, MatchesLexicographicOnAdversarialPairs) {
  StringArena arena;
  const auto strings = AdversarialStrings();
  std::vector<StringKey> keys;
  for (const auto& s : strings) keys.push_back(arena.Add(s));
  for (std::size_t i = 0; i < strings.size(); ++i) {
    for (std::size_t j = 0; j < strings.size(); ++j) {
      const bool expect_lt =
          std::string_view(strings[i]) < std::string_view(strings[j]);
      const bool expect_eq = strings[i] == strings[j];
      EXPECT_EQ(keys[i] < keys[j], expect_lt)
          << "i=" << i << " j=" << j << " a=\"" << strings[i] << "\" b=\""
          << strings[j] << '"';
      EXPECT_EQ(keys[i] == keys[j], expect_eq) << "i=" << i << " j=" << j;
    }
  }
}

TEST(StringKeyOrder, MatchesLexicographicOnRandomStrings) {
  SplitMix64 rng(0xfeedface);
  StringArena arena;
  std::vector<std::string> strings;
  std::vector<StringKey> keys;
  for (int i = 0; i < 2000; ++i) {
    // Short lengths around the 8-byte boundary and a tiny alphabet so that
    // shared prefixes, ties, and exact duplicates all occur frequently.
    const std::size_t len = rng.Next() % 14;
    std::string s;
    for (std::size_t k = 0; k < len; ++k) {
      s.push_back(static_cast<char>('a' + rng.Next() % 3));
    }
    strings.push_back(s);
    keys.push_back(arena.Add(strings.back()));
  }
  for (int trial = 0; trial < 20000; ++trial) {
    const std::size_t i = rng.Next() % strings.size();
    const std::size_t j = rng.Next() % strings.size();
    EXPECT_EQ(keys[i] < keys[j],
              std::string_view(strings[i]) < std::string_view(strings[j]))
        << "a=\"" << strings[i] << "\" b=\"" << strings[j] << '"';
  }
}

TEST(StringKeyOrder, SentinelRanksAboveEverything) {
  StringArena arena;
  const StringKey max = SortableLimits<StringKey>::Max();
  for (const auto& s : AdversarialStrings()) {
    const StringKey k = arena.Add(s);
    EXPECT_TRUE(k < max) << '"' << s << '"';
    EXPECT_FALSE(max < k);
  }
  EXPECT_FALSE(max < max);
}

/// Sorted key sequence must equal the sorted string sequence, element for
/// element (not just is_sorted: ties must keep the full multiset).
void ExpectMatchesReference(const std::vector<StringKey>& keys,
                            std::vector<std::string> strings) {
  std::sort(strings.begin(), strings.end());
  ASSERT_EQ(keys.size(), strings.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i].view(), std::string_view(strings[i])) << "at " << i;
  }
}

TEST(StringKeyRadix, LsbRadixEqualsComparisonSort) {
  SplitMix64 rng(11);
  StringArena arena;
  std::vector<std::string> strings;
  // Heavy on shared >8-byte prefixes so FixupPrefixTies has real work.
  for (int i = 0; i < 5000; ++i) {
    std::string s = (i % 3 == 0) ? "shared-long-prefix-" : "";
    const std::size_t len = rng.Next() % 10;
    for (std::size_t k = 0; k < len; ++k) {
      s.push_back(static_cast<char>('a' + rng.Next() % 4));
    }
    strings.push_back(std::move(s));
  }
  std::vector<StringKey> keys;
  for (const auto& s : strings) keys.push_back(arena.Add(s));
  std::vector<StringKey> aux(keys.size());
  LsbRadixSort(keys.data(), aux.data(),
               static_cast<std::int64_t>(keys.size()));
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  ExpectMatchesReference(keys, strings);
}

TEST(StringKeyRadix, ParadisEqualsComparisonSort) {
  DataGenOptions gen;
  gen.seed = 99;
  gen.distribution = Distribution::kNearlySorted;  // URL generator: long
                                                   // shared domain prefixes
  StringArena arena;
  auto keys = GenerateStringKeys(20000, gen, &arena);
  std::vector<std::string> strings;
  for (const auto& k : keys) strings.emplace_back(k.view());
  ParadisSort(keys.data(), static_cast<std::int64_t>(keys.size()));
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  ExpectMatchesReference(keys, strings);
}

TEST(StringKeyGen, DeterministicForSeed) {
  DataGenOptions gen;
  gen.seed = 1234;
  gen.distribution = Distribution::kZipf;
  StringArena a1, a2;
  auto k1 = GenerateStringKeys(500, gen, &a1);
  auto k2 = GenerateStringKeys(500, gen, &a2);
  ASSERT_EQ(k1.size(), k2.size());
  for (std::size_t i = 0; i < k1.size(); ++i) {
    EXPECT_EQ(k1[i].view(), k2[i].view()) << "at " << i;
  }
}

struct GpuStringCase {
  const char* algo;
  Distribution dist;
};

class GpuStringSortSweep : public ::testing::TestWithParam<GpuStringCase> {};

TEST_P(GpuStringSortSweep, SortsStringsOnTheSimulatedMachine) {
  const auto& c = GetParam();
  auto platform =
      CheckOk(vgpu::Platform::Create(CheckOk(topo::MakeSystem("dgx-a100"))));
  DataGenOptions gen;
  gen.seed = 7;
  gen.distribution = c.dist;
  StringArena arena;
  auto keys = GenerateStringKeys(200000, gen, &arena);
  std::vector<std::string> strings;
  for (const auto& k : keys) strings.emplace_back(k.view());
  vgpu::HostBuffer<StringKey> data(std::move(keys));
  Result<SortStats> stats = Status::Internal("unset");
  if (std::string_view(c.algo) == "p2p") {
    SortOptions options;
    options.gpu_set = CheckOk(ChooseGpuSet(platform->topology(), 4, true));
    stats = P2pSort(platform.get(), &data, options);
  } else {
    HetOptions options;
    options.gpu_set = CheckOk(ChooseGpuSet(platform->topology(), 4, false));
    stats = HetSort(platform.get(), &data, options);
  }
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(std::is_sorted(data.vector().begin(), data.vector().end()));
  ExpectMatchesReference(data.vector(), std::move(strings));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GpuStringSortSweep,
    ::testing::Values(GpuStringCase{"p2p", Distribution::kUniform},
                      GpuStringCase{"p2p", Distribution::kZipf},
                      GpuStringCase{"het", Distribution::kNearlySorted}),
    [](const ::testing::TestParamInfo<GpuStringCase>& info) {
      std::string name = info.param.algo;
      name += "_";
      for (char ch : std::string(DistributionToString(info.param.dist))) {
        name += ch == '-' ? '_' : ch;
      }
      return name;
    });

}  // namespace
}  // namespace mgs::core
