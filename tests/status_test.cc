#include "util/status.h"

#include <gtest/gtest.h>

namespace mgs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::Invalid("bad arg");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad arg");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad arg");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfMemory("x").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("a"), Status::Invalid("a"));
  EXPECT_FALSE(Status::Invalid("a") == Status::Invalid("b"));
  EXPECT_FALSE(Status::Invalid("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CopySharesState) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_EQ(a, b);
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::NotFound("gpu 9");
  EXPECT_EQ(os.str(), "Not found: gpu 9");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Invalid("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

namespace macros {
Status Fails() { return Status::Internal("inner"); }
Status Caller() {
  MGS_RETURN_IF_ERROR(Fails());
  return Status::OK();
}
Result<int> Source(bool ok) {
  if (ok) return 5;
  return Status::Invalid("no value");
}
Result<int> Chained(bool ok) {
  MGS_ASSIGN_OR_RETURN(int v, Source(ok));
  return v * 2;
}
}  // namespace macros

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(macros::Caller().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnHappyPath) {
  auto r = macros::Chained(true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 10);
}

TEST(ResultTest, AssignOrReturnErrorPath) {
  auto r = macros::Chained(false);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, CheckOkReturnsValue) {
  EXPECT_EQ(CheckOk(Result<int>(3)), 3);
}

}  // namespace
}  // namespace mgs
