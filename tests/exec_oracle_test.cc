// Randomized A/B equivalence suite: graph execution (exec::GraphExecutor)
// against the phase-barrier oracle (ExecMode::kPhased). Both paths run the
// same underlying stream and flow-network operations, so the graph path must
// reproduce the oracle's output bitwise across preset systems, randomized
// topologies, all key types, and fault scenarios — and be deterministic
// across same-seed runs. Double-typed stats (p2p_bytes, pivot_seconds)
// accumulate in execution order, so they compare with EXPECT_NEAR;
// structural stats (merge_stages, chunk_groups) must match exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/api.h"
#include "fault/injector.h"
#include "fault/scenario.h"
#include "sched/server.h"
#include "topo/systems.h"
#include "util/datagen.h"
#include "util/units.h"
#include "vgpu/platform.h"

namespace mgs {
namespace {

// Compact mirror of random_topology_test's generator: 1-2 sockets, 2-8 GPUs,
// random link capacities, random extra P2P links, always connected.
std::unique_ptr<topo::Topology> MakeRandomTopology(std::uint64_t seed) {
  SplitMix64 rng(seed);
  auto topo_ptr =
      std::make_unique<topo::Topology>("random-" + std::to_string(seed));
  auto& t = *topo_ptr;

  const int sockets = 1 + static_cast<int>(rng.Next() % 2);
  const int gpus = 2 + static_cast<int>(rng.Next() % 7);

  topo::CpuSpec cpu;
  cpu.model = "random CPU";
  cpu.sockets = sockets;
  cpu.cores = 32;
  cpu.paradis_rate_32 = 0.3e9 + rng.NextDouble() * 1.5e9;
  cpu.multiway_merge_bw = (20 + rng.NextDouble() * 60) * kGB;
  t.SetCpuSpec(cpu);

  for (int s = 0; s < sockets; ++s) {
    t.AddCpuSocket();
    const double read = (50 + rng.NextDouble() * 150) * kGB;
    CheckOk(t.AttachHostMemory(s, read, read * 0.8, read * 1.2,
                               1.0 + rng.NextDouble() * 0.3));
  }
  if (sockets == 2) {
    topo::LinkSpec cpu_link;
    cpu_link.name = "cpu-link";
    cpu_link.kind = topo::LinkKind::kUpi;
    cpu_link.cap_ab = (20 + rng.NextDouble() * 80) * kGB;
    cpu_link.duplex_cap = cpu_link.cap_ab * 1.5;
    CheckOk(t.Connect(t.CpuNode(0), t.CpuNode(1), cpu_link));
  }

  topo::GpuSpec gpu;
  gpu.model = "random GPU";
  gpu.memory_capacity_bytes = (8 + rng.NextDouble() * 72) * kGB;
  gpu.memory_bandwidth = (400 + rng.NextDouble() * 1600) * kGB;
  gpu.sort_rate_32 = 5e9 + rng.NextDouble() * 30e9;
  gpu.sort_rate_64 = gpu.sort_rate_32 / 2;
  gpu.merge_rate_32 = gpu.sort_rate_32 * 4;
  for (int g = 0; g < gpus; ++g) {
    const int socket = static_cast<int>(rng.Next() % sockets);
    t.AddGpu(gpu, socket);
    topo::LinkSpec uplink;
    uplink.name = "up" + std::to_string(g);
    uplink.kind =
        rng.Next() % 2 ? topo::LinkKind::kPcie4 : topo::LinkKind::kNvlink2;
    uplink.cap_ab = (8 + rng.NextDouble() * 70) * kGB;
    uplink.duplex_cap = uplink.cap_ab * (1.3 + rng.NextDouble() * 0.7);
    CheckOk(t.Connect(t.CpuNode(socket), t.GpuNode(g), uplink));
  }
  const int extra = static_cast<int>(rng.Next() % (gpus + 1));
  for (int e = 0; e < extra; ++e) {
    const int a = static_cast<int>(rng.Next() % gpus);
    const int b = static_cast<int>(rng.Next() % gpus);
    if (a == b) continue;
    topo::LinkSpec p2p;
    p2p.name = "p2p" + std::to_string(e);
    p2p.kind = topo::LinkKind::kNvlink3;
    p2p.cap_ab = (20 + rng.NextDouble() * 280) * kGB;
    p2p.duplex_cap = p2p.cap_ab * 1.9;
    CheckOk(t.Connect(t.GpuNode(a), t.GpuNode(b), p2p));
  }
  return topo_ptr;
}

/// One P2P run on a fresh platform. Returns the sorted data through *out.
template <typename T>
Result<core::SortStats> RunP2p(std::unique_ptr<topo::Topology> topo,
                               const std::vector<T>& input, int gpus,
                               core::ExecMode mode, std::vector<T>* out) {
  auto platform = CheckOk(vgpu::Platform::Create(std::move(topo)));
  core::SortOptions options;
  options.gpu_set = CheckOk(
      core::ChooseGpuSet(platform->topology(), gpus, /*for_p2p_merge=*/true));
  options.exec_mode = mode;
  vgpu::HostBuffer<T> data(input);
  auto stats = core::P2pSort(platform.get(), &data, options);
  if (stats.ok()) *out = data.vector();
  return stats;
}

class ExecOracleSweep : public ::testing::TestWithParam<int> {};

// The headline property: on an arbitrary topology with arbitrary input,
// ExecMode::kGraph produces the byte-identical array the phase-barrier
// oracle produces, with the same structural stats.
TEST_P(ExecOracleSweep, P2pGraphMatchesPhaseOracle) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  DataGenOptions gen;
  gen.seed = seed;
  const Distribution dists[] = {Distribution::kUniform, Distribution::kZipf,
                                Distribution::kNearlySorted,
                                Distribution::kReverseSorted};
  gen.distribution = dists[seed % 4];
  const auto input = GenerateKeys<std::int32_t>(20'000 + 1000 * (seed % 5),
                                                gen);

  auto probe = MakeRandomTopology(seed);
  int gpus = 1;
  while (2 * gpus <= probe->num_gpus()) gpus *= 2;

  std::vector<std::int32_t> phased_out, graph_out;
  auto phased = RunP2p(MakeRandomTopology(seed), input, gpus,
                       core::ExecMode::kPhased, &phased_out);
  auto graph = RunP2p(MakeRandomTopology(seed), input, gpus,
                      core::ExecMode::kGraph, &graph_out);
  ASSERT_TRUE(phased.ok()) << phased.status();
  ASSERT_TRUE(graph.ok()) << graph.status();

  EXPECT_EQ(graph_out, phased_out);
  EXPECT_EQ(graph->merge_stages, phased->merge_stages);
  EXPECT_EQ(graph->num_gpus, phased->num_gpus);
  EXPECT_NEAR(graph->p2p_bytes, phased->p2p_bytes,
              1e-6 * (1 + phased->p2p_bytes));
  EXPECT_NEAR(graph->pivot_seconds, phased->pivot_seconds,
              1e-9 + 1e-6 * phased->pivot_seconds);
}

// Same seed, same mode, twice: bitwise-identical outputs and identical
// simulated timings (the executor's dispatch order is deterministic).
TEST_P(ExecOracleSweep, GraphRunsAreDeterministic) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  DataGenOptions gen;
  gen.seed = seed;
  const auto input = GenerateKeys<std::int32_t>(15'000, gen);
  auto probe = MakeRandomTopology(seed);
  int gpus = 1;
  while (2 * gpus <= probe->num_gpus()) gpus *= 2;

  std::vector<std::int32_t> out_a, out_b;
  auto a = RunP2p(MakeRandomTopology(seed), input, gpus,
                  core::ExecMode::kGraph, &out_a);
  auto b = RunP2p(MakeRandomTopology(seed), input, gpus,
                  core::ExecMode::kGraph, &out_b);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(out_a, out_b);
  EXPECT_DOUBLE_EQ(a->total_seconds, b->total_seconds);
  EXPECT_DOUBLE_EQ(a->p2p_bytes, b->p2p_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecOracleSweep, ::testing::Range(0, 20));

// Preset systems, every key type.
TEST(ExecOracleTest, P2pMatchesOracleOnPresetsAllTypes) {
  for (const char* system : {"ac922", "dgx-a100", "delta-d22x"}) {
    DataGenOptions gen;
    gen.seed = 99;
    auto run_type = [&](auto tag) {
      using T = decltype(tag);
      const auto input = GenerateKeys<T>(12'000, gen);
      std::vector<T> phased_out, graph_out;
      auto phased =
          RunP2p(CheckOk(topo::MakeSystem(system)), input, 2,
                 core::ExecMode::kPhased, &phased_out);
      auto graph = RunP2p(CheckOk(topo::MakeSystem(system)), input, 2,
                          core::ExecMode::kGraph, &graph_out);
      ASSERT_TRUE(phased.ok()) << system << ": " << phased.status();
      ASSERT_TRUE(graph.ok()) << system << ": " << graph.status();
      EXPECT_EQ(graph_out, phased_out) << system;
    };
    run_type(std::int32_t{});
    run_type(std::int64_t{});
    run_type(double{});
  }
}

// HET sort: both buffer schemes, with and without eager merging, including
// multi-chunk-group runs forced by a small GPU memory budget.
TEST(ExecOracleTest, HetMatchesOracleBothSchemes) {
  DataGenOptions gen;
  gen.seed = 7;
  const auto input = GenerateKeys<std::int32_t>(60'000, gen);
  auto expected = input;
  std::sort(expected.begin(), expected.end());

  for (core::BufferScheme scheme :
       {core::BufferScheme::k2n, core::BufferScheme::k3n}) {
    for (bool eager : {false, true}) {
      auto run = [&](core::ExecMode mode, std::vector<std::int32_t>* out,
                     core::SortStats* stats) {
        auto platform =
            CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
        core::HetOptions options;
        options.scheme = scheme;
        options.eager_merge = eager;
        options.exec_mode = mode;
        // Small budget => several chunks per GPU => a deep pipeline.
        options.gpu_memory_budget = 64 * 1024;
        ThreadPool pool(4);
        options.host_pool = &pool;
        vgpu::HostBuffer<std::int32_t> data(input);
        auto s = core::HetSort(platform.get(), &data, options);
        ASSERT_TRUE(s.ok()) << core::BufferSchemeToString(scheme)
                            << " eager=" << eager << ": " << s.status();
        *out = data.vector();
        *stats = *s;
      };
      std::vector<std::int32_t> phased_out, graph_out;
      core::SortStats phased_stats, graph_stats;
      run(core::ExecMode::kPhased, &phased_out, &phased_stats);
      run(core::ExecMode::kGraph, &graph_out, &graph_stats);
      EXPECT_EQ(phased_out, expected)
          << core::BufferSchemeToString(scheme) << " eager=" << eager;
      EXPECT_EQ(graph_out, phased_out)
          << core::BufferSchemeToString(scheme) << " eager=" << eager;
      EXPECT_EQ(graph_stats.chunk_groups, phased_stats.chunk_groups);
      EXPECT_EQ(graph_stats.final_merge_sublists,
                phased_stats.final_merge_sublists);
    }
  }
}

// ---------------------------------------------------------------------------
// Fault scenarios: the graph path must fail with the same status code the
// oracle fails with (it may attribute the error to a different chunk — the
// contract is code equality, not message equality).
// ---------------------------------------------------------------------------

StatusCode RunP2pWithFaults(const std::string& plan, core::ExecMode mode,
                            std::vector<std::int32_t>* out) {
  auto platform = CheckOk(vgpu::Platform::Create(
      topo::MakeDgxA100(), vgpu::PlatformOptions{2e6}));
  fault::FaultInjector injector(platform.get(),
                                CheckOk(fault::FaultScenario::Parse(plan)));
  CheckOk(injector.Arm());
  DataGenOptions gen;
  gen.seed = 21;
  vgpu::HostBuffer<std::int32_t> data(GenerateKeys<std::int32_t>(1000, gen));
  core::SortOptions options;
  options.gpu_set = {0, 1, 2, 3};
  options.exec_mode = mode;
  auto stats = core::P2pSort(platform.get(), &data, options);
  if (stats.ok()) {
    *out = data.vector();
    return StatusCode::kOk;
  }
  return stats.status().code();
}

TEST(ExecOracleFaultTest, GpuFailStopSurfacesSameStatusCode) {
  std::vector<std::int32_t> phased_out, graph_out;
  const auto phased =
      RunP2pWithFaults("at=0.01 gpu=0 fail", core::ExecMode::kPhased,
                       &phased_out);
  const auto graph = RunP2pWithFaults("at=0.01 gpu=0 fail",
                                      core::ExecMode::kGraph, &graph_out);
  EXPECT_EQ(phased, StatusCode::kUnavailable);
  EXPECT_EQ(graph, phased);
}

TEST(ExecOracleFaultTest, CopyErrorWindowSurfacesSameStatusCode) {
  std::vector<std::int32_t> phased_out, graph_out;
  const auto phased = RunP2pWithFaults("at=0 copy-error rate=1 until=5",
                                       core::ExecMode::kPhased, &phased_out);
  const auto graph = RunP2pWithFaults("at=0 copy-error rate=1 until=5",
                                      core::ExecMode::kGraph, &graph_out);
  EXPECT_EQ(phased, StatusCode::kUnavailable);
  EXPECT_EQ(graph, phased);
}

TEST(ExecOracleFaultTest, DegradedLinkStillMatchesOracle) {
  // A degraded (not down) link changes timing but not correctness: both
  // modes must succeed with identical output.
  std::vector<std::int32_t> phased_out, graph_out;
  const auto phased =
      RunP2pWithFaults("at=0 link=nvl12 factor=0.25", core::ExecMode::kPhased,
                       &phased_out);
  const auto graph = RunP2pWithFaults("at=0 link=nvl12 factor=0.25",
                                      core::ExecMode::kGraph, &graph_out);
  ASSERT_EQ(phased, StatusCode::kOk);
  ASSERT_EQ(graph, StatusCode::kOk);
  EXPECT_EQ(graph_out, phased_out);
}

TEST(ExecOracleFaultTest, FaultyGraphRunsAreDeterministic) {
  auto run = [] {
    std::vector<std::int32_t> out;
    const auto code = RunP2pWithFaults("at=0 copy-error rate=0.3 until=2",
                                       core::ExecMode::kGraph, &out);
    return std::make_pair(code, out);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// ---------------------------------------------------------------------------
// Server integration: shared executor, concurrent tenants.
// ---------------------------------------------------------------------------

TEST(ExecServerTest, SharedExecutorCompletesConcurrentTenants) {
  auto run = [](core::ExecMode mode) {
    auto platform = CheckOk(vgpu::Platform::Create(
        topo::MakeDgxA100(), vgpu::PlatformOptions{2e6}));
    sched::ServerOptions options;
    options.exec_mode = mode;
    options.allow_gpu_sharing = true;
    sched::SortServer server(platform.get(), options);
    for (int i = 0; i < 4; ++i) {
      sched::JobSpec spec;
      spec.arrival_seconds = 0.01 * i;
      spec.logical_keys = 2e9;
      spec.gpus = 2;
      spec.pinned_gpus = {0, 1};  // all tenants share one GPU pair
      spec.seed = 100 + static_cast<std::uint64_t>(i);
      server.Submit(spec);
    }
    return CheckOk(server.Run());
  };
  const auto phased = run(core::ExecMode::kPhased);
  const auto graph = run(core::ExecMode::kGraph);
  EXPECT_EQ(phased.completed, 4);
  EXPECT_EQ(graph.completed, 4);
  EXPECT_EQ(graph.failed, 0);
  EXPECT_GT(graph.makespan, 0);
  // The perf claim (>= 15% makespan win at 4 tenants) is gated by
  // bench_exec_overlap; here we only require the graph path not to fall
  // behind the barrier path on the same workload.
  EXPECT_LE(graph.makespan, phased.makespan * 1.01);
}

}  // namespace
}  // namespace mgs
