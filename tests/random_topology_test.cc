// Randomized-topology property tests: generate arbitrary (connected)
// platforms and verify the whole stack — routing, flow allocation, and all
// three multi-GPU sorting algorithms — behaves correctly on them. This is
// the "will it work on *my* machine?" guarantee for downstream users with
// topologies unlike the three presets.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/api.h"
#include "core/radix_partition_sort.h"
#include "util/datagen.h"
#include "util/units.h"
#include "vgpu/platform.h"

namespace mgs {
namespace {

// Deterministic random platform: 1-2 sockets, 2-8 GPUs, random link
// capacities, random extra P2P links; always connected (every GPU gets a
// CPU uplink).
std::unique_ptr<topo::Topology> MakeRandomTopology(std::uint64_t seed) {
  SplitMix64 rng(seed);
  auto topo_ptr =
      std::make_unique<topo::Topology>("random-" + std::to_string(seed));
  auto& t = *topo_ptr;

  const int sockets = 1 + static_cast<int>(rng.Next() % 2);
  const int gpus = 2 + static_cast<int>(rng.Next() % 7);

  topo::CpuSpec cpu;
  cpu.model = "random CPU";
  cpu.sockets = sockets;
  cpu.cores = 32;
  cpu.paradis_rate_32 = 0.3e9 + rng.NextDouble() * 1.5e9;
  cpu.multiway_merge_bw = (20 + rng.NextDouble() * 60) * kGB;
  t.SetCpuSpec(cpu);

  for (int s = 0; s < sockets; ++s) {
    t.AddCpuSocket();
    const double read = (50 + rng.NextDouble() * 150) * kGB;
    CheckOk(t.AttachHostMemory(s, read, read * 0.8, read * 1.2,
                               1.0 + rng.NextDouble() * 0.3));
  }
  if (sockets == 2) {
    topo::LinkSpec cpu_link;
    cpu_link.name = "cpu-link";
    cpu_link.kind = topo::LinkKind::kUpi;
    cpu_link.cap_ab = (20 + rng.NextDouble() * 80) * kGB;
    cpu_link.duplex_cap = cpu_link.cap_ab * 1.5;
    CheckOk(t.Connect(t.CpuNode(0), t.CpuNode(1), cpu_link));
  }

  topo::GpuSpec gpu;
  gpu.model = "random GPU";
  gpu.memory_capacity_bytes = (8 + rng.NextDouble() * 72) * kGB;
  gpu.memory_bandwidth = (400 + rng.NextDouble() * 1600) * kGB;
  gpu.sort_rate_32 = 5e9 + rng.NextDouble() * 30e9;
  gpu.sort_rate_64 = gpu.sort_rate_32 / 2;
  gpu.merge_rate_32 = gpu.sort_rate_32 * 4;
  for (int g = 0; g < gpus; ++g) {
    const int socket = static_cast<int>(rng.Next() % sockets);
    t.AddGpu(gpu, socket);
    topo::LinkSpec uplink;
    uplink.name = "up" + std::to_string(g);
    uplink.kind = rng.Next() % 2 ? topo::LinkKind::kPcie4
                                 : topo::LinkKind::kNvlink2;
    uplink.cap_ab = (8 + rng.NextDouble() * 70) * kGB;
    uplink.duplex_cap = uplink.cap_ab * (1.3 + rng.NextDouble() * 0.7);
    CheckOk(t.Connect(t.CpuNode(socket), t.GpuNode(g), uplink));
  }
  // Random P2P links (possibly none).
  const int extra = static_cast<int>(rng.Next() % (gpus + 1));
  for (int e = 0; e < extra; ++e) {
    const int a = static_cast<int>(rng.Next() % gpus);
    const int b = static_cast<int>(rng.Next() % gpus);
    if (a == b) continue;
    topo::LinkSpec p2p;
    p2p.name = "p2p" + std::to_string(e);
    p2p.kind = topo::LinkKind::kNvlink3;
    p2p.cap_ab = (20 + rng.NextDouble() * 280) * kGB;
    p2p.duplex_cap = p2p.cap_ab * 1.9;
    CheckOk(t.Connect(t.GpuNode(a), t.GpuNode(b), p2p));
  }
  return topo_ptr;
}

class RandomTopologyTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomTopologyTest, EveryPairRoutesWithPositiveBandwidth) {
  auto topo = MakeRandomTopology(static_cast<std::uint64_t>(GetParam()));
  sim::Simulator sim;
  sim::FlowNetwork net(&sim);
  ASSERT_TRUE(topo->Compile(&net).ok());
  for (int a = 0; a < topo->num_gpus(); ++a) {
    auto htod = topo->LoneFlowBandwidth(topo::CopyKind::kHostToDevice,
                                        topo::Endpoint::HostMemory(0),
                                        topo::Endpoint::Gpu(a));
    ASSERT_TRUE(htod.ok());
    EXPECT_GT(*htod, 0);
    for (int b = 0; b < topo->num_gpus(); ++b) {
      if (a == b) continue;
      auto p2p = topo->LoneFlowBandwidth(topo::CopyKind::kPeerToPeer,
                                         topo::Endpoint::Gpu(a),
                                         topo::Endpoint::Gpu(b));
      ASSERT_TRUE(p2p.ok());
      EXPECT_GT(*p2p, 0);
    }
  }
}

TEST_P(RandomTopologyTest, AllAlgorithmsSortCorrectly) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  DataGenOptions gen;
  gen.seed = seed;
  gen.distribution =
      GetParam() % 2 ? Distribution::kUniform : Distribution::kZipf;
  const auto input = GenerateKeys<std::int32_t>(30'000, gen);
  auto expected = input;
  std::sort(expected.begin(), expected.end());

  // P2P needs 2^k GPUs: use the largest power of two available.
  {
    auto platform =
        CheckOk(vgpu::Platform::Create(MakeRandomTopology(seed)));
    int g = 1;
    while (2 * g <= platform->num_devices()) g *= 2;
    core::SortOptions options;
    options.gpu_set = CheckOk(
        core::ChooseGpuSet(platform->topology(), g, /*for_p2p_merge=*/true));
    vgpu::HostBuffer<std::int32_t> data(input);
    auto stats = core::P2pSort(platform.get(), &data, options);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(data.vector(), expected);
  }
  // HET on all GPUs.
  {
    auto platform =
        CheckOk(vgpu::Platform::Create(MakeRandomTopology(seed)));
    core::HetOptions options;
    vgpu::HostBuffer<std::int32_t> data(input);
    auto stats = core::HetSort(platform.get(), &data, options);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(data.vector(), expected);
  }
  // RDX on all GPUs (skew-heavy seeds may overflow: accept the documented
  // kOutOfMemory, never a wrong answer).
  {
    auto platform =
        CheckOk(vgpu::Platform::Create(MakeRandomTopology(seed)));
    core::RadixPartitionOptions options;
    options.slack = 1.5;
    vgpu::HostBuffer<std::int32_t> data(input);
    auto stats = core::RadixPartitionSort(platform.get(), &data, options);
    if (stats.ok()) {
      EXPECT_EQ(data.vector(), expected);
    } else {
      EXPECT_EQ(stats.status().code(), StatusCode::kOutOfMemory);
    }
  }
}

TEST_P(RandomTopologyTest, GpuSetChooserWorks) {
  auto topo = MakeRandomTopology(static_cast<std::uint64_t>(GetParam()));
  sim::Simulator sim;
  sim::FlowNetwork net(&sim);
  ASSERT_TRUE(topo->Compile(&net).ok());
  for (int g = 1; g <= topo->num_gpus(); g *= 2) {
    auto set = core::ChooseGpuSet(*topo, g, true);
    ASSERT_TRUE(set.ok()) << set.status();
    EXPECT_EQ(static_cast<int>(set->size()), g);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace mgs
