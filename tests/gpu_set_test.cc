// Tests for GPU-set selection and ordering (Section 5.4 / 6).

#include "core/gpu_set.h"

#include <gtest/gtest.h>

#include "sim/flow_network.h"
#include "sim/simulator.h"
#include "topo/systems.h"

namespace mgs::core {
namespace {

std::unique_ptr<topo::Topology> Compiled(
    std::unique_ptr<topo::Topology> topo, sim::FlowNetwork* net) {
  CheckOk(topo->Compile(net));
  return topo;
}

class GpuSetTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  sim::FlowNetwork net_{&sim_};
};

TEST_F(GpuSetTest, DgxPrefersDistinctPcieSwitches) {
  auto topo = Compiled(topo::MakeDgxA100(), &net_);
  // Section 6: "GPU pair (0, 2) achieves higher CPU-GPU copy throughput
  // than (0, 1) on the DGX A100."
  auto two = CheckOk(ChooseGpuSet(*topo, 2, true));
  std::sort(two.begin(), two.end());
  EXPECT_NE(two, (std::vector<int>{0, 1})) << "must avoid a shared switch";
  auto four = CheckOk(ChooseGpuSet(*topo, 4, true));
  std::sort(four.begin(), four.end());
  EXPECT_EQ(four, (std::vector<int>{0, 2, 4, 6}));
  auto eight = CheckOk(ChooseGpuSet(*topo, 8, true));
  EXPECT_EQ(eight.size(), 8u);
}

TEST_F(GpuSetTest, Ac922PrefersLocalNvlinkPair) {
  auto topo = Compiled(topo::MakeAc922(), &net_);
  auto two = CheckOk(ChooseGpuSet(*topo, 2, true));
  std::sort(two.begin(), two.end());
  // NVLink-local pair on node 0 has 141 GB/s aggregate vs ~113 for (0,2).
  EXPECT_EQ(two, (std::vector<int>{0, 1}));
}

TEST_F(GpuSetTest, Ac922OrderPairsNvlinkNeighbors) {
  auto topo = Compiled(topo::MakeAc922(), &net_);
  auto four = CheckOk(ChooseGpuSet(*topo, 4, true));
  // Section 5.4: (0,1,2,3) is the best order — pairwise merges stay on
  // NVLink; (0,2,1,3) would put X-Bus hops in the leaf stages.
  ASSERT_EQ(four.size(), 4u);
  auto pair_ok = [](int a, int b) {
    return (a == 0 && b == 1) || (a == 1 && b == 0) || (a == 2 && b == 3) ||
           (a == 3 && b == 2);
  };
  EXPECT_TRUE(pair_ok(four[0], four[1])) << four[0] << "," << four[1];
  EXPECT_TRUE(pair_ok(four[2], four[3])) << four[2] << "," << four[3];
}

TEST_F(GpuSetTest, Ac922OrderCostRanksCorrectly) {
  auto topo = Compiled(topo::MakeAc922(), &net_);
  const double good = CheckOk(P2pOrderCost(*topo, {0, 1, 2, 3}));
  const double bad = CheckOk(P2pOrderCost(*topo, {0, 2, 1, 3}));
  EXPECT_LT(good, bad)
      << "Section 5.4: GPU set (0,2,1,3) performs worse for P2P sort";
}

TEST_F(GpuSetTest, DeltaAnyPairWorks) {
  auto topo = Compiled(topo::MakeDeltaD22x(), &net_);
  auto two = CheckOk(ChooseGpuSet(*topo, 2, true));
  EXPECT_EQ(two.size(), 2u);
  auto four = CheckOk(ChooseGpuSet(*topo, 4, true));
  // The chosen order must place directly-NVLinked pairs in the leaves.
  EXPECT_TRUE(*topo->IsDirectP2p(four[0], four[1]));
  EXPECT_TRUE(*topo->IsDirectP2p(four[2], four[3]));
}

TEST_F(GpuSetTest, RejectsBadCounts) {
  auto topo = Compiled(topo::MakeAc922(), &net_);
  EXPECT_FALSE(ChooseGpuSet(*topo, 0, true).ok());
  EXPECT_FALSE(ChooseGpuSet(*topo, 5, true).ok());
}

TEST_F(GpuSetTest, UncompiledTopologyRejected) {
  auto topo = topo::MakeAc922();
  EXPECT_EQ(ChooseGpuSet(*topo, 2, true).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(GpuSetTest, SingleGpuSelectionIsLocal) {
  auto topo = Compiled(topo::MakeAc922(), &net_);
  auto one = CheckOk(ChooseGpuSet(*topo, 1, false));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(topo->gpu_socket(one[0]), 0) << "data lives on NUMA node 0";
}

}  // namespace
}  // namespace mgs::core
