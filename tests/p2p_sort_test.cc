// Correctness and timing tests for the P2P multi-GPU sort.

#include "core/p2p_sort.h"

#include "core/gpu_set.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/systems.h"
#include "util/datagen.h"

namespace mgs::core {
namespace {

struct P2pCase {
  std::string system;
  int gpus;
  std::int64_t n;
  Distribution dist;
};

std::string CaseName(const ::testing::TestParamInfo<P2pCase>& info) {
  const auto& c = info.param;
  std::string s = c.system + "_g" + std::to_string(c.gpus) + "_n" +
                  std::to_string(c.n) + "_";
  for (char ch : std::string(DistributionToString(c.dist))) {
    s += ch == '-' ? '_' : ch;
  }
  std::replace(s.begin(), s.end(), '-', '_');
  return s;
}

class P2pSortSweep : public ::testing::TestWithParam<P2pCase> {};

TEST_P(P2pSortSweep, SortsCorrectly) {
  const auto& c = GetParam();
  auto platform =
      CheckOk(vgpu::Platform::Create(CheckOk(topo::MakeSystem(c.system))));
  DataGenOptions opt;
  opt.distribution = c.dist;
  opt.seed = static_cast<std::uint64_t>(c.n) + c.gpus;
  auto keys = GenerateKeys<std::int32_t>(c.n, opt);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  SortOptions options;
  options.gpu_set = CheckOk(
      ChooseGpuSet(platform->topology(), c.gpus, /*for_p2p_merge=*/true));
  auto stats = P2pSort(platform.get(), &data, options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(data.vector(), expected);
  EXPECT_EQ(stats->num_gpus, c.gpus);
  EXPECT_GT(stats->total_seconds, 0);
}

std::vector<P2pCase> MakeCases() {
  std::vector<P2pCase> cases;
  const Distribution dists[] = {
      Distribution::kUniform, Distribution::kNormal, Distribution::kSorted,
      Distribution::kReverseSorted, Distribution::kNearlySorted,
      Distribution::kZipf};
  for (const char* sys : {"ac922", "delta-d22x", "dgx-a100"}) {
    for (int g : {1, 2, 4}) {
      for (Distribution d : dists) {
        cases.push_back(P2pCase{sys, g, 40'000, d});
      }
    }
  }
  for (Distribution d : dists) {
    cases.push_back(P2pCase{"dgx-a100", 8, 80'000, d});
  }
  // Ragged sizes exercise the sentinel padding.
  cases.push_back(P2pCase{"dgx-a100", 4, 39'999, Distribution::kUniform});
  cases.push_back(P2pCase{"dgx-a100", 8, 100'001, Distribution::kZipf});
  cases.push_back(P2pCase{"ac922", 4, 1, Distribution::kUniform});
  cases.push_back(P2pCase{"ac922", 4, 7, Distribution::kUniform});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, P2pSortSweep, ::testing::ValuesIn(MakeCases()),
                         CaseName);

TEST(P2pSortTest, OtherKeyTypes) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  DataGenOptions opt;
  SortOptions options;
  options.gpu_set = {0, 1};
  {
    auto keys = GenerateKeys<double>(10'000, opt);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    vgpu::HostBuffer<double> data(std::move(keys));
    CheckOk(P2pSort(platform.get(), &data, options).status());
    EXPECT_EQ(data.vector(), expected);
  }
  {
    auto keys = GenerateKeys<std::int64_t>(10'000, opt);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    vgpu::HostBuffer<std::int64_t> data(std::move(keys));
    CheckOk(P2pSort(platform.get(), &data, options).status());
    EXPECT_EQ(data.vector(), expected);
  }
}

TEST(P2pSortTest, RejectsNonPowerOfTwoGpuCount) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  vgpu::HostBuffer<std::int32_t> data(100);
  SortOptions options;
  options.gpu_set = {0, 1, 2};
  EXPECT_EQ(P2pSort(platform.get(), &data, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(P2pSortTest, RejectsUnknownGpu) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  vgpu::HostBuffer<std::int32_t> data(100);
  SortOptions options;
  options.gpu_set = {0, 9};
  EXPECT_EQ(P2pSort(platform.get(), &data, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(P2pSortTest, EmptyInput) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  vgpu::HostBuffer<std::int32_t> data(0);
  SortOptions options;
  options.gpu_set = {0, 1};
  auto stats = P2pSort(platform.get(), &data, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->total_seconds, 0);
}

TEST(P2pSortTest, FailsWhenDataExceedsGpuMemory) {
  // Scale lets a small actual array represent more than 2x32 GB logical.
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeAc922(),
                                                 vgpu::PlatformOptions{1e7}));
  vgpu::HostBuffer<std::int32_t> data(2000);  // 80 GB logical
  SortOptions options;
  options.gpu_set = {0, 1};  // 2 x 32 GB, needs 2n per GPU = 160 GB
  EXPECT_EQ(P2pSort(platform.get(), &data, options).status().code(),
            StatusCode::kOutOfMemory);
}

TEST(P2pSortTest, SortedInputMovesNoP2pBytes) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  DataGenOptions opt;
  opt.distribution = Distribution::kSorted;
  auto keys = GenerateKeys<std::int32_t>(40'000, opt);
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  SortOptions options;
  options.gpu_set = {0, 1, 2, 3};
  auto stats = CheckOk(P2pSort(platform.get(), &data, options));
  EXPECT_DOUBLE_EQ(stats.p2p_bytes, 0)
      << "leftmost pivot must skip all swaps on sorted input";
}

TEST(P2pSortTest, ReverseSortedMovesMaximalP2pBytes) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  DataGenOptions opt;
  opt.distribution = Distribution::kReverseSorted;
  const std::int64_t n = 40'000;
  auto keys = GenerateKeys<std::int32_t>(n, opt);
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  SortOptions options;
  options.gpu_set = {0, 1};
  auto stats = CheckOk(P2pSort(platform.get(), &data, options));
  // Whole halves swap: 2 * n/2 keys cross the interconnect.
  EXPECT_DOUBLE_EQ(stats.p2p_bytes, static_cast<double>(n) * 4);
}

TEST(P2pSortTest, UniformMovesAboutHalf) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  DataGenOptions opt;
  const std::int64_t n = 100'000;
  auto keys = GenerateKeys<std::int32_t>(n, opt);
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  SortOptions options;
  options.gpu_set = {0, 1};
  auto stats = CheckOk(P2pSort(platform.get(), &data, options));
  // Average-case pivot near n/4 per half: ~ 2 * n/4 keys * 4 bytes.
  EXPECT_NEAR(stats.p2p_bytes, static_cast<double>(n) * 2,
              static_cast<double>(n) * 0.2);
}

TEST(P2pSortTest, MergeStageCountMatchesRecursion) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  DataGenOptions opt;
  auto keys = GenerateKeys<std::int32_t>(80'000, opt);
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  SortOptions options;
  options.gpu_set = {0, 1, 2, 3, 4, 5, 6, 7};
  auto stats = CheckOk(P2pSort(platform.get(), &data, options));
  // T(g) = 2*T(g/2) + 1 stage-executions at the top: T(2)=1, T(4)=2*1+2=4?
  // Counting MergeStage invocations: T(2)=1; T(g)=4*T(g/2)+1 for g>2
  // (two pre-recursions, one stage, two post-recursions):
  // T(4) = 4*1+1 = 5; T(8) = 4*5+1 = 21.
  EXPECT_EQ(stats.merge_stages, 21);
}

// ---------------------------------------------------------------------------
// Timing: the paper's headline numbers (Figure 1, DGX A100, 16 GB)
// ---------------------------------------------------------------------------

double RunFig1P2p(int gpus) {
  auto platform = CheckOk(vgpu::Platform::Create(
      topo::MakeDgxA100(), vgpu::PlatformOptions{4'000'000.0}));
  DataGenOptions opt;
  auto keys = GenerateKeys<std::int32_t>(1000, opt);  // 4e9 logical keys
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  SortOptions options;
  options.gpu_set = CheckOk(
      ChooseGpuSet(platform->topology(), gpus, /*for_p2p_merge=*/true));
  return CheckOk(P2pSort(platform.get(), &data, options)).total_seconds;
}

TEST(P2pSortPaperTest, Figure1SingleGpuThrust) {
  // Paper: 1.47 s for 4e9 keys on one A100 (PCIe 4.0-bound).
  EXPECT_NEAR(RunFig1P2p(1), 1.47, 0.15);
}

TEST(P2pSortPaperTest, Figure1TwoGpus) {
  // Paper: 0.75 s with two GPUs on distinct PCIe switches.
  EXPECT_NEAR(RunFig1P2p(2), 0.75, 0.10);
}

TEST(P2pSortPaperTest, Figure1FourGpus) {
  // Paper: 0.45 s with four GPUs.
  EXPECT_NEAR(RunFig1P2p(4), 0.45, 0.07);
}

TEST(P2pSortPaperTest, BreakdownFig14TwoGpus2B) {
  // Fig. 14a bottom: 2e9 keys on GPUs (0,2): total 0.38 s, merge ~4%.
  auto platform = CheckOk(vgpu::Platform::Create(
      topo::MakeDgxA100(), vgpu::PlatformOptions{2'000'000.0}));
  DataGenOptions opt;
  auto keys = GenerateKeys<std::int32_t>(1000, opt);
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  SortOptions options;
  options.gpu_set = {0, 2};
  auto stats = CheckOk(P2pSort(platform.get(), &data, options));
  EXPECT_NEAR(stats.total_seconds, 0.38, 0.06);
  EXPECT_LT(stats.phases.merge / stats.total_seconds, 0.10);
}

}  // namespace
}  // namespace mgs::core
