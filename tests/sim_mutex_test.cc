#include "vgpu/sim_mutex.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/task.h"

namespace mgs::vgpu {
namespace {

using sim::Delay;
using sim::Simulator;
using sim::Spawn;
using sim::Task;

TEST(SimMutexTest, UncontendedAcquireIsImmediate) {
  Simulator sim;
  SimMutex mutex;
  bool acquired = false;
  auto body = [&]() -> Task<void> {
    co_await mutex.Acquire();
    acquired = true;
    mutex.Release();
  };
  Spawn(body());
  EXPECT_TRUE(acquired);
  EXPECT_FALSE(mutex.locked());
}

TEST(SimMutexTest, SerializesHolders) {
  Simulator sim;
  SimMutex mutex;
  std::vector<std::pair<int, double>> events;
  auto worker = [&](int id, double hold) -> Task<void> {
    co_await mutex.Acquire();
    events.emplace_back(id, sim.Now());
    co_await Delay{sim, hold};
    mutex.Release();
  };
  Spawn(worker(1, 2.0));
  Spawn(worker(2, 3.0));
  Spawn(worker(3, 1.0));
  sim.Run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], std::make_pair(1, 0.0));
  EXPECT_EQ(events[1], std::make_pair(2, 2.0)) << "FIFO order";
  EXPECT_EQ(events[2], std::make_pair(3, 5.0));
}

TEST(SimMutexTest, WaiterCountTracksQueue) {
  Simulator sim;
  SimMutex mutex;
  auto holder = [&]() -> Task<void> {
    co_await mutex.Acquire();
    co_await Delay{sim, 1.0};
    mutex.Release();
  };
  auto waiter = [&]() -> Task<void> {
    co_await mutex.Acquire();
    mutex.Release();
  };
  Spawn(holder());
  Spawn(waiter());
  Spawn(waiter());
  EXPECT_TRUE(mutex.locked());
  EXPECT_EQ(mutex.waiters(), 2u);
  sim.Run();
  EXPECT_FALSE(mutex.locked());
  EXPECT_EQ(mutex.waiters(), 0u);
}

}  // namespace
}  // namespace mgs::vgpu
