// Tests for the multi-tenant sort service (src/sched): metrics, queue
// policies, admission control, placement, determinism, and interference
// between co-scheduled tenants on shared interconnect links.

#include "sched/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "core/p2p_sort.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "sim/trace.h"
#include "topo/systems.h"

namespace mgs::sched {
namespace {

// Platform scale used throughout: 2e9 logical keys become 1000 actual keys,
// so the functional layer stays cheap while timings are paper-scale.
constexpr double kScale = 2e6;

std::unique_ptr<vgpu::Platform> MakeDgx() {
  return CheckOk(vgpu::Platform::Create(topo::MakeDgxA100(),
                                        vgpu::PlatformOptions{kScale}));
}

JobSpec MakeJob(double arrival, double keys, int gpus,
                std::vector<int> pinned = {}) {
  JobSpec spec;
  spec.arrival_seconds = arrival;
  spec.logical_keys = keys;
  spec.gpus = gpus;
  spec.pinned_gpus = std::move(pinned);
  spec.seed = static_cast<std::uint64_t>(keys) + gpus;
  return spec;
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, PercentileNearestRank) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  EXPECT_DOUBLE_EQ(Percentile(samples, 50), 50);
  EXPECT_DOUBLE_EQ(Percentile(samples, 95), 95);
  EXPECT_DOUBLE_EQ(Percentile(samples, 99), 99);
  EXPECT_DOUBLE_EQ(Percentile(samples, 100), 100);
  EXPECT_DOUBLE_EQ(Percentile(samples, 0), 1);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0);
  EXPECT_DOUBLE_EQ(Percentile({3.5}, 99), 3.5);
}

TEST(MetricsTest, SummarizeBasics) {
  const auto s = Summarize({4, 1, 3, 2});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.p50, 2);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
}

// ---------------------------------------------------------------------------
// Queue policies
// ---------------------------------------------------------------------------

TEST(QueueTest, FifoOrdersByArrival) {
  JobQueue q(QueuePolicy::kFifo);
  q.Push(7, 100, 0);
  q.Push(3, 1, 5);
  q.Push(9, 50, 2);
  EXPECT_EQ(q.DispatchOrder(), (std::vector<std::int64_t>{7, 3, 9}));
  EXPECT_FALSE(q.allows_bypass());
  q.Remove(3);
  EXPECT_EQ(q.DispatchOrder(), (std::vector<std::int64_t>{7, 9}));
}

TEST(QueueTest, SjfOrdersByBytesThenArrival) {
  JobQueue q(QueuePolicy::kSjfBytes);
  q.Push(1, 100, 0);
  q.Push(2, 10, 0);
  q.Push(3, 10, 0);
  EXPECT_EQ(q.DispatchOrder(), (std::vector<std::int64_t>{2, 3, 1}));
  EXPECT_TRUE(q.allows_bypass());
}

TEST(QueueTest, PriorityOrdersDescendingThenArrival) {
  JobQueue q(QueuePolicy::kPriority);
  q.Push(1, 0, 1);
  q.Push(2, 0, 9);
  q.Push(3, 0, 9);
  EXPECT_EQ(q.DispatchOrder(), (std::vector<std::int64_t>{2, 3, 1}));
}

TEST(QueueTest, PolicyStringRoundTrip) {
  for (QueuePolicy p : {QueuePolicy::kFifo, QueuePolicy::kSjfBytes,
                        QueuePolicy::kPriority}) {
    EXPECT_EQ(CheckOk(QueuePolicyFromString(QueuePolicyToString(p))), p);
  }
  EXPECT_FALSE(QueuePolicyFromString("lifo").ok());
}

// ---------------------------------------------------------------------------
// Device memory reservations (vgpu) — the admission/placement substrate
// ---------------------------------------------------------------------------

TEST(ReservationTest, ReserveTracksAvailability) {
  auto platform = MakeDgx();
  auto& dev = platform->device(0);
  const double capacity = dev.memory_capacity();
  EXPECT_DOUBLE_EQ(dev.memory_available(), capacity);
  CheckOk(dev.Reserve(capacity / 2));
  EXPECT_DOUBLE_EQ(dev.memory_reserved(), capacity / 2);
  EXPECT_DOUBLE_EQ(dev.memory_available(), capacity / 2);
  EXPECT_NEAR(dev.memory_pressure(), 0.5, 1e-12);
  EXPECT_EQ(dev.Reserve(capacity).code(), StatusCode::kOutOfMemory);
  dev.Unreserve(capacity / 2);
  EXPECT_DOUBLE_EQ(dev.memory_reserved(), 0);
  dev.Unreserve(1e12);  // clamps at zero, never negative
  EXPECT_DOUBLE_EQ(dev.memory_reserved(), 0);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(AdmissionTest, RejectsMalformedAndOversizedJobs) {
  auto platform = MakeDgx();
  AdmissionController admission(platform.get(), AdmissionOptions{});

  JobSpec three = MakeJob(0, 1e9, 3);
  EXPECT_EQ(admission.Admit(three, 8e9, 0).code(),
            StatusCode::kInvalidArgument);

  JobSpec sixteen = MakeJob(0, 1e9, 16);
  EXPECT_EQ(admission.Admit(sixteen, 8e9, 0).code(),
            StatusCode::kInvalidArgument);

  JobSpec whale = MakeJob(0, 40e9, 1);  // 2x160 GB per GPU: never fits
  EXPECT_EQ(admission.Admit(whale, 320e9, 0).code(),
            StatusCode::kOutOfMemory);

  JobSpec pinned_dup = MakeJob(0, 1e9, 2, {3, 3});
  EXPECT_EQ(admission.Admit(pinned_dup, 8e9, 0).code(),
            StatusCode::kInvalidArgument);

  JobSpec pinned_bad = MakeJob(0, 1e9, 2, {0, 12});
  EXPECT_EQ(admission.Admit(pinned_bad, 8e9, 0).code(),
            StatusCode::kInvalidArgument);

  JobSpec ok = MakeJob(0, 1e9, 2);
  EXPECT_TRUE(admission.Admit(ok, 8e9, 0).ok());
}

TEST(AdmissionTest, EnforcesQueueDepthAndMemoryFraction) {
  auto platform = MakeDgx();
  AdmissionOptions options;
  options.max_queue_depth = 4;
  options.max_job_memory_fraction = 0.1;
  AdmissionController admission(platform.get(), options);

  JobSpec small = MakeJob(0, 1e9, 1);
  EXPECT_TRUE(admission.Admit(small, 8e9, 3).ok());
  EXPECT_EQ(admission.Admit(small, 8e9, 4).code(),
            StatusCode::kFailedPrecondition);

  // 8 GPUs x 40 GB = 320 GB fleet; 10% cap = 32 GB; a 4-GPU job needing
  // 16 GB per GPU asks for 64 GB total.
  JobSpec big = MakeJob(0, 4e9, 4);
  EXPECT_EQ(admission.Admit(big, 16e9, 0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(AdmissionTest, FleetPressureIgnoresFailedDevices) {
  // Regression: FleetPressure used to average over every device, so a
  // failed GPU's frozen pressure diluted (or inflated) the fleet signal.
  auto platform = MakeDgx();
  AdmissionController admission(platform.get(), AdmissionOptions{});
  const double cap = platform->device(0).memory_capacity();
  CheckOk(platform->device(0).Reserve(cap / 2));
  EXPECT_NEAR(admission.FleetPressure(), 0.5 / 8, 1e-12);

  platform->device(1).Fail(Status::Unavailable("test"));
  EXPECT_NEAR(admission.FleetPressure(), 0.5 / 7, 1e-12);

  for (int i = 0; i < platform->num_devices(); ++i) {
    if (!platform->device(i).failed()) {
      platform->device(i).Fail(Status::Unavailable("test"));
    }
  }
  // No healthy devices left: the fleet is saturated by definition.
  EXPECT_DOUBLE_EQ(admission.FleetPressure(), 1.0);
}

TEST(AdmissionTest, MemoryFractionCapCountsHealthyCapacityOnly) {
  // Regression: the max_job_memory_fraction cap summed failed devices'
  // capacity, so jobs were admitted against memory that no longer exists.
  auto platform = MakeDgx();
  AdmissionOptions options;
  options.max_job_memory_fraction = 0.1;
  AdmissionController admission(platform.get(), options);

  // Healthy fleet: 8 x 40 GB = 320 GB, cap 32 GB. A 2-GPU job asking
  // 9 GB per GPU (18 GB total) fits under the cap.
  JobSpec job = MakeJob(0, 4e9, 2);
  EXPECT_TRUE(admission.Admit(job, 9e9, 0).ok());

  // Half the fleet dies: 160 GB healthy, cap 16 GB. The same job must now
  // bounce.
  for (int gpu = 4; gpu < 8; ++gpu) {
    platform->device(gpu).Fail(Status::Unavailable("test"));
  }
  EXPECT_EQ(admission.Admit(job, 9e9, 0).code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Workload generation
// ---------------------------------------------------------------------------

TEST(WorkloadTest, PoissonWorkloadHonorsTenantCount) {
  JobMix mix;
  mix.tenants = 3;
  const auto jobs = MakePoissonWorkload(mix, 5.0, 9, /*seed=*/1);
  ASSERT_EQ(jobs.size(), 9u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].tenant, "open" + std::to_string(i % 3));
  }
  // The default population stays 4, matching the pre-knob behavior.
  const auto defaults = MakePoissonWorkload(JobMix{}, 5.0, 8, /*seed=*/1);
  std::set<std::string> tenants;
  for (const auto& spec : defaults) tenants.insert(spec.tenant);
  EXPECT_EQ(tenants.size(), 4u);
}

TEST(WorkloadTest, DistinctDatasetPoolBoundsDatasetIdentities) {
  JobMix mix;
  mix.distinct_datasets = 2;
  const auto jobs = MakePoissonWorkload(mix, 5.0, 20, /*seed=*/9);
  std::set<std::pair<std::uint64_t, double>> datasets;
  for (const auto& spec : jobs) {
    datasets.insert({spec.seed, spec.logical_keys});
  }
  EXPECT_LE(datasets.size(), 2u);
  EXPECT_GE(datasets.size(), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end service runs
// ---------------------------------------------------------------------------

TEST(SortServerTest, CompletesPoissonWorkloadAndReports) {
  auto platform = MakeDgx();
  SortServer server(platform.get(), ServerOptions{});
  JobMix mix;
  server.Submit(MakePoissonWorkload(mix, 2.0, 12, /*seed=*/11));
  const auto report = CheckOk(server.Run());

  EXPECT_EQ(report.jobs.size(), 12u);
  EXPECT_EQ(report.completed, 12);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.rejected, 0);
  EXPECT_EQ(report.completion_order.size(), 12u);
  EXPECT_GT(report.makespan, 0);
  EXPECT_GT(report.aggregate_gkeys_per_sec, 0);
  EXPECT_GT(report.latency.p50, 0);
  EXPECT_LE(report.latency.p50, report.latency.p95);
  EXPECT_LE(report.latency.p95, report.latency.p99);
  EXPECT_LE(report.latency.p99, report.latency.max);
  EXPECT_EQ(report.latency.count, 12u);
  EXPECT_FALSE(report.links.empty());
  for (const auto& link : report.links) {
    EXPECT_GE(link.utilization, 0);
    EXPECT_LE(link.utilization, 1.0 + 1e-9);
  }
  // Busiest-first ordering.
  for (std::size_t i = 1; i < report.links.size(); ++i) {
    EXPECT_GE(report.links[i - 1].utilization, report.links[i].utilization);
  }
  for (const auto& rec : report.jobs) {
    EXPECT_EQ(rec.state, JobState::kDone);
    EXPECT_GE(rec.queue_delay(), 0);
    EXPECT_GT(rec.service_time(), 0);
    EXPECT_NEAR(rec.latency(), rec.queue_delay() + rec.service_time(), 1e-9);
    EXPECT_GT(rec.sort.total_seconds, 0);
  }
}

TEST(SortServerTest, DeterministicReplay) {
  auto run = [] {
    auto platform = MakeDgx();
    ServerOptions options;
    options.policy = QueuePolicy::kSjfBytes;
    SortServer server(platform.get(), options);
    JobMix mix;
    server.Submit(MakePoissonWorkload(mix, 3.0, 24, /*seed=*/5));
    return CheckOk(server.Run());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.makespan, b.makespan);  // bitwise: same event sequence
  EXPECT_EQ(a.completion_order, b.completion_order);
  EXPECT_EQ(a.latency.p99, b.latency.p99);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
    EXPECT_EQ(a.jobs[i].gpu_set, b.jobs[i].gpu_set);
  }
}

TEST(SortServerTest, InterferenceOnSharedPcieSwitch) {
  // On the DGX A100, GPUs 0 and 1 hang off the same PCIe switch (plx0).
  // A job per GPU, co-scheduled, must run measurably slower than the same
  // job alone: they halve the shared upstream bandwidth.
  const double keys = 2e9;
  auto isolated = [&] {
    auto platform = MakeDgx();
    SortServer server(platform.get(), ServerOptions{});
    server.Submit(MakeJob(0, keys, 1, {0}));
    return CheckOk(server.Run()).jobs[0].service_time();
  }();
  ASSERT_GT(isolated, 0);

  auto platform = MakeDgx();
  SortServer server(platform.get(), ServerOptions{});
  server.Submit(MakeJob(0, keys, 1, {0}));
  server.Submit(MakeJob(0, keys, 1, {1}));
  const auto report = CheckOk(server.Run());
  EXPECT_EQ(report.completed, 2);
  for (const auto& rec : report.jobs) {
    EXPECT_GT(rec.service_time(), 1.15 * isolated)
        << "job " << rec.id << " shows no contention on the shared switch";
  }
}

TEST(SortServerTest, PlacerAvoidsBusyPcieSwitch) {
  // Two unpinned 1-GPU jobs arriving together: the placer must not put the
  // second on the first GPU's switch sibling when equally-sized GPUs on an
  // idle switch exist.
  auto platform = MakeDgx();
  SortServer server(platform.get(), ServerOptions{});
  server.Submit(MakeJob(0, 2e9, 1));
  server.Submit(MakeJob(0, 2e9, 1));
  const auto report = CheckOk(server.Run());
  ASSERT_EQ(report.completed, 2);
  const int first = report.jobs[0].gpu_set.at(0);
  const int second = report.jobs[1].gpu_set.at(0);
  EXPECT_NE(first, second);
  EXPECT_NE(first / 2, second / 2)
      << "second job landed on the busy PCIe switch (GPUs " << first << ","
      << second << ")";
}

TEST(SortServerTest, SjfOvertakesFifoUnderBacklog) {
  auto run = [](QueuePolicy policy) {
    auto platform = MakeDgx();
    ServerOptions options;
    options.policy = policy;
    options.max_concurrent_jobs = 1;  // serialize to expose the ordering
    SortServer server(platform.get(), options);
    server.Submit(MakeJob(0, 4e9, 2));    // id 0: big
    server.Submit(MakeJob(0, 2e9, 2));    // id 1: medium
    server.Submit(MakeJob(0, 0.5e9, 2));  // id 2: small
    return CheckOk(server.Run()).completion_order;
  };
  // FIFO keeps arrival order; SJF finishes the small job before the medium
  // one (job 0 dispatches first under both: the queue is empty when it
  // arrives).
  EXPECT_EQ(run(QueuePolicy::kFifo), (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_EQ(run(QueuePolicy::kSjfBytes),
            (std::vector<std::int64_t>{0, 2, 1}));
}

TEST(SortServerTest, PriorityPolicyRunsUrgentJobsFirst) {
  auto platform = MakeDgx();
  ServerOptions options;
  options.policy = QueuePolicy::kPriority;
  options.max_concurrent_jobs = 1;
  SortServer server(platform.get(), options);
  JobSpec low = MakeJob(0, 2e9, 2);
  low.priority = 0;
  JobSpec high = MakeJob(0, 2e9, 2);
  high.priority = 10;
  server.Submit(low);    // id 0, dispatches immediately
  server.Submit(low);    // id 1
  server.Submit(high);   // id 2: overtakes id 1 in the queue
  const auto report = CheckOk(server.Run());
  EXPECT_EQ(report.completion_order, (std::vector<std::int64_t>{0, 2, 1}));
}

TEST(SortServerTest, RejectsBadJobsAndKeepsServing) {
  auto platform = MakeDgx();
  SortServer server(platform.get(), ServerOptions{});
  server.Submit(MakeJob(0, 1e9, 3));   // non-power-of-two
  server.Submit(MakeJob(0, 40e9, 1));  // can never fit one GPU
  server.Submit(MakeJob(0, 2e9, 2));   // fine
  const auto report = CheckOk(server.Run());
  EXPECT_EQ(report.rejected, 2);
  EXPECT_EQ(report.completed, 1);
  EXPECT_EQ(report.jobs[0].state, JobState::kRejected);
  EXPECT_FALSE(report.jobs[0].error.empty());
  EXPECT_EQ(report.jobs[1].state, JobState::kRejected);
  EXPECT_EQ(report.jobs[2].state, JobState::kDone);
}

TEST(SortServerTest, ShedsLoadAtQueueDepthLimit) {
  auto platform = MakeDgx();
  ServerOptions options;
  options.admission.max_queue_depth = 1;
  options.max_concurrent_jobs = 1;
  SortServer server(platform.get(), options);
  for (int i = 0; i < 4; ++i) {
    server.Submit(MakeJob(0.001 * i, 2e9, 2));
  }
  const auto report = CheckOk(server.Run());
  // One runs, one queues, the rest bounce off the depth limit.
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.rejected, 2);
}

TEST(SortServerTest, ClosedLoopClientsCompleteAllJobs) {
  auto platform = MakeDgx();
  ServerOptions options;
  options.slo_seconds = 60;  // generous: everything lands inside it
  SortServer server(platform.get(), options);
  ClosedLoopOptions loop;
  loop.clients = 3;
  loop.jobs_per_client = 3;
  loop.think_seconds = 0.05;
  loop.mix.max_keys = 1e9;
  server.AddClosedLoop(loop);
  const auto report = CheckOk(server.Run());
  EXPECT_EQ(report.jobs.size(), 9u);
  EXPECT_EQ(report.completed, 9);
  EXPECT_DOUBLE_EQ(report.slo_attainment, 1.0);
  // Closed-loop tenants stamp their client name.
  EXPECT_EQ(report.jobs[0].spec.tenant.rfind("client", 0), 0u);
}

TEST(SortServerTest, UtilizationSamplerRecordsCounters) {
  auto platform = MakeDgx();
  sim::TraceRecorder trace;
  platform->SetTrace(&trace);
  ServerOptions options;
  options.utilization_sample_seconds = 0.05;
  SortServer server(platform.get(), options);
  server.Submit(MakeJob(0, 2e9, 2));
  CheckOk(server.Run()).completed;
  EXPECT_FALSE(trace.counters().empty());
  bool saw_positive = false;
  for (const auto& c : trace.counters()) {
    EXPECT_EQ(c.track, "link-util");
    EXPECT_GE(c.value, 0);
    EXPECT_LE(c.value, 1.0 + 1e-9);
    if (c.value > 0) saw_positive = true;
  }
  EXPECT_TRUE(saw_positive) << "no link ever showed load during a sort";
  // Job spans made it into the same trace.
  bool saw_run_span = false;
  for (const auto& s : trace.spans()) {
    if (s.track.rfind("sched:gpu", 0) == 0) saw_run_span = true;
  }
  EXPECT_TRUE(saw_run_span);
}

TEST(SortServerTest, PublishesJobTelemetryToRegistry) {
  auto platform = MakeDgx();
  obs::MetricsRegistry registry;
  platform->SetMetrics(&registry);
  ServerOptions options;
  options.utilization_sample_seconds = 0.05;
  SortServer server(platform.get(), options);
  server.Submit(MakeJob(0, 2e9, 2));
  server.Submit(MakeJob(0.01, 1e9, 1));
  server.Submit(MakeJob(0.02, 1e9, 3));  // rejected: non-power-of-two GPUs
  const auto report = CheckOk(server.Run());
  ASSERT_EQ(report.completed, 2);
  ASSERT_EQ(report.rejected, 1);

  EXPECT_DOUBLE_EQ(registry.CounterValue(kSchedJobs, {{"state", "done"}}), 2);
  // Rejection reasons carry the admission status code.
  const auto* rejections = registry.FindFamily(kSchedRejections);
  ASSERT_NE(rejections, nullptr);
  double rejected_total = 0;
  for (const auto& [labels, counter] : rejections->counters) {
    rejected_total += counter->value();
  }
  EXPECT_DOUBLE_EQ(rejected_total, 1);

  // Queue emptied out by the end; latency histograms saw every done job.
  EXPECT_DOUBLE_EQ(registry.GaugeValue(kSchedQueueDepth), 0);
  EXPECT_DOUBLE_EQ(registry.GaugeValue(kSchedRunningJobs), 0);
  const auto* latency = registry.FindFamily(kSchedJobLatencySeconds);
  ASSERT_NE(latency, nullptr);
  ASSERT_EQ(latency->histograms.size(), 1u);
  EXPECT_EQ(latency->histograms.begin()->second->count(), 2u);

  // The final flow sync mirrored link traffic into the registry.
  const auto* link_bytes = registry.FindFamily(obs::kLinkBytes);
  ASSERT_NE(link_bytes, nullptr);
  double total_bytes = 0;
  for (const auto& [labels, counter] : link_bytes->counters) {
    total_bytes += counter->value();
  }
  EXPECT_GT(total_bytes, 0);
}

TEST(SortServerTest, PublishesSloBurnWhenLatencyExceedsTarget) {
  auto platform = MakeDgx();
  obs::MetricsRegistry registry;
  platform->SetMetrics(&registry);
  ServerOptions options;
  options.slo_seconds = 1e-6;  // unattainable: every job burns SLO budget
  SortServer server(platform.get(), options);
  server.Submit(MakeJob(0, 2e9, 2));
  const auto report = CheckOk(server.Run());
  ASSERT_EQ(report.completed, 1);
  EXPECT_DOUBLE_EQ(registry.CounterValue(kSchedSloViolations), 1);
  EXPECT_GT(registry.CounterValue(kSchedSloBurnSeconds), 0);
}

TEST(SortServerTest, EmptyServiceFinishesImmediately) {
  auto platform = MakeDgx();
  SortServer server(platform.get(), ServerOptions{});
  const auto report = CheckOk(server.Run());
  EXPECT_EQ(report.jobs.size(), 0u);
  EXPECT_EQ(report.makespan, 0);
  EXPECT_EQ(report.latency.count, 0u);
}

TEST(SortServerTest, RunTwiceFails) {
  auto platform = MakeDgx();
  SortServer server(platform.get(), ServerOptions{});
  CheckOk(server.Run());
  EXPECT_EQ(server.Run().status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Concurrent P2pSortTask runs on one shared simulator
// ---------------------------------------------------------------------------

TEST(ConcurrentSortTest, TwoTasksShareTheSimulatorAndBothSortCorrectly) {
  auto platform = MakeDgx();
  DataGenOptions gen;
  gen.seed = 1;
  auto keys_a = GenerateKeys<std::int32_t>(1000, gen);
  gen.seed = 2;
  auto keys_b = GenerateKeys<std::int32_t>(1000, gen);
  auto expected_a = keys_a;
  auto expected_b = keys_b;
  std::sort(expected_a.begin(), expected_a.end());
  std::sort(expected_b.begin(), expected_b.end());
  vgpu::HostBuffer<std::int32_t> a(std::move(keys_a));
  vgpu::HostBuffer<std::int32_t> b(std::move(keys_b));

  core::SortOptions on01;
  on01.gpu_set = {0, 1};
  core::SortOptions on45;
  on45.gpu_set = {4, 5};
  Result<core::SortStats> out_a = Status::Internal("never ran");
  Result<core::SortStats> out_b = Status::Internal("never ran");
  std::vector<sim::Task<void>> tasks;
  tasks.push_back(core::P2pSortTask<std::int32_t>(platform.get(), &a, on01,
                                                  &out_a));
  tasks.push_back(core::P2pSortTask<std::int32_t>(platform.get(), &b, on45,
                                                  &out_b));
  CheckOk(platform->Run(sim::WhenAll(std::move(tasks))).status());
  ASSERT_TRUE(out_a.ok()) << out_a.status();
  ASSERT_TRUE(out_b.ok()) << out_b.status();
  EXPECT_EQ(a.vector(), expected_a);
  EXPECT_EQ(b.vector(), expected_b);
  EXPECT_GT(out_a->total_seconds, 0);
  EXPECT_GT(out_b->total_seconds, 0);
}

// ---------------------------------------------------------------------------
// Multi-node placement and distributed jobs (src/net cluster)
// ---------------------------------------------------------------------------

std::unique_ptr<vgpu::Platform> MakeCluster(int nodes, int nodes_per_rack,
                                            net::ClusterInfo* info) {
  net::ClusterOptions copt;
  copt.node_system = "delta-d22x";
  copt.nodes = nodes;
  copt.nodes_per_rack = nodes_per_rack;
  auto cluster = CheckOk(net::BuildCluster(copt));
  *info = cluster.info;
  return CheckOk(vgpu::Platform::Create(std::move(cluster.topology),
                                        vgpu::PlatformOptions{kScale}));
}

TEST(PlacementTest, PlaceNodesPacksIntoOneRack) {
  net::ClusterInfo info;
  auto platform = MakeCluster(/*nodes=*/4, /*nodes_per_rack=*/2, &info);
  Placer placer(platform.get(), /*allow_gpu_sharing=*/false);
  std::vector<int> running(
      static_cast<std::size_t>(platform->num_devices()), 0);

  // Empty cluster: lowest rack, lowest node ids.
  auto placed = CheckOk(placer.PlaceNodes(info, 2, 1.0, running));
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(*placed, (std::vector<int>{0, 1}));

  // One GPU of node 1 busy: rack 1 is now the only whole rack, so a 2-node
  // job goes there instead of straddling the spine with {0, 2}.
  running[static_cast<std::size_t>(info.FirstGpu(1))] = 1;
  placed = CheckOk(placer.PlaceNodes(info, 2, 1.0, running));
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(*placed, (std::vector<int>{2, 3}));

  // Three nodes can't avoid the spine; the fuller rack contributes first
  // and the selection comes back sorted.
  placed = CheckOk(placer.PlaceNodes(info, 3, 1.0, running));
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(*placed, (std::vector<int>{0, 2, 3}));

  // More nodes than are whole right now: queued, not an error.
  placed = CheckOk(placer.PlaceNodes(info, 4, 1.0, running));
  EXPECT_FALSE(placed.has_value());
  EXPECT_FALSE(placer.PlaceNodes(info, 5, 1.0, running).ok());
}

TEST(DistributedJobTest, RunsAcrossNodesAndReportsShuffle) {
  net::ClusterInfo info;
  auto platform = MakeCluster(/*nodes=*/2, /*nodes_per_rack=*/2, &info);
  ServerOptions options;
  options.cluster = &info;
  SortServer server(platform.get(), options);

  JobSpec spec = MakeJob(/*arrival=*/0, /*keys=*/4e8, /*gpus=*/1);
  spec.nodes = 2;
  const std::int64_t id = server.Submit(spec);
  auto report = CheckOk(server.Run());
  ASSERT_EQ(report.failed, 0);
  EXPECT_EQ(report.completed, 1);

  const JobRecord& rec = server.job(id);
  EXPECT_EQ(rec.state, JobState::kDone);
  EXPECT_EQ(rec.node_set, (std::vector<int>{0, 1}));
  // Whole nodes: gpus was normalized to nodes x gpus-per-node.
  EXPECT_EQ(rec.spec.gpus, 2 * info.gpus_per_node());
  EXPECT_EQ(static_cast<int>(rec.gpu_set.size()), rec.spec.gpus);
  EXPECT_EQ(rec.sort.nodes, 2);
  EXPECT_EQ(rec.sort.algorithm, "DIST sort");
  EXPECT_GT(rec.sort.shuffle_bytes, 0);
  EXPECT_GT(rec.sort.cross_node_bytes, 0);
}

TEST(DistributedJobTest, MixesWithSingleNodeTenantsAndSerializes) {
  net::ClusterInfo info;
  auto platform = MakeCluster(/*nodes=*/2, /*nodes_per_rack=*/2, &info);
  ServerOptions options;
  options.cluster = &info;
  SortServer server(platform.get(), options);

  // The distributed job needs both nodes, so it must wait for the
  // single-node jobs that arrived first to drain.
  const std::int64_t small_a = server.Submit(MakeJob(0, 1e8, 2));
  const std::int64_t small_b = server.Submit(MakeJob(0, 1e8, 2));
  JobSpec dist = MakeJob(/*arrival=*/0.001, /*keys=*/4e8, /*gpus=*/1);
  dist.nodes = 2;
  const std::int64_t big = server.Submit(dist);

  auto report = CheckOk(server.Run());
  EXPECT_EQ(report.completed, 3);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(server.job(big).state, JobState::kDone);
  EXPECT_GE(server.job(big).start, server.job(small_a).start);
  EXPECT_GT(server.job(big).queue_delay(), 0);
  EXPECT_EQ(server.job(small_a).sort.nodes, 1);
  EXPECT_EQ(server.job(small_b).sort.nodes, 1);
}

TEST(DistributedJobTest, RejectsJobsTheClusterCannotExpress) {
  net::ClusterInfo info;
  auto platform = MakeCluster(/*nodes=*/2, /*nodes_per_rack=*/2, &info);

  {
    // nodes > cluster size and pinned multi-node jobs are rejected up
    // front; valid work on the same server still runs.
    ServerOptions options;
    options.cluster = &info;
    SortServer server(platform.get(), options);
    JobSpec too_big = MakeJob(0, 1e8, 1);
    too_big.nodes = 3;
    JobSpec pinned = MakeJob(0, 1e8, 1, /*pinned=*/{0});
    pinned.nodes = 2;
    const auto id_big = server.Submit(too_big);
    const auto id_pin = server.Submit(pinned);
    const auto id_ok = server.Submit(MakeJob(0, 1e8, 1));
    auto report = CheckOk(server.Run());
    EXPECT_EQ(server.job(id_big).state, JobState::kRejected);
    EXPECT_EQ(server.job(id_pin).state, JobState::kRejected);
    EXPECT_EQ(server.job(id_ok).state, JobState::kDone);
    EXPECT_EQ(report.rejected, 2);
  }
  {
    // A multi-node job on a server with no cluster configured is rejected
    // rather than wedging the queue.
    SortServer server(platform.get(), ServerOptions{});
    JobSpec spec = MakeJob(0, 1e8, 1);
    spec.nodes = 2;
    const auto id = server.Submit(spec);
    CheckOk(server.Run());
    EXPECT_EQ(server.job(id).state, JobState::kRejected);
  }
}

}  // namespace
}  // namespace mgs::sched
