#include "util/units.h"

#include <gtest/gtest.h>

namespace mgs {
namespace {

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(4e9), "4.00 GB");
  EXPECT_EQ(FormatBytes(1.5e6), "1.50 MB");
  EXPECT_EQ(FormatBytes(2048), "2.05 KB");
  EXPECT_EQ(FormatBytes(12), "12 B");
}

TEST(UnitsTest, FormatThroughput) {
  EXPECT_EQ(FormatThroughput(72e9), "72.0 GB/s");
  EXPECT_EQ(FormatThroughput(5.25e6), "5.2 MB/s");
}

TEST(UnitsTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(2.25), "2.250 s");
  EXPECT_EQ(FormatDuration(0.036), "36.00 ms");
  EXPECT_EQ(FormatDuration(42e-6), "42.00 us");
  EXPECT_EQ(FormatDuration(15e-9), "15.0 ns");
}

TEST(UnitsTest, FormatKeys) {
  EXPECT_EQ(FormatKeys(2'000'000'000), "2.00B keys");
  EXPECT_EQ(FormatKeys(512'000'000), "512.0M keys");
  EXPECT_EQ(FormatKeys(1'500), "1.5K keys");
  EXPECT_EQ(FormatKeys(7), "7 keys");
}

TEST(UnitsTest, Constants) {
  EXPECT_DOUBLE_EQ(kGB, 1e9);
  EXPECT_EQ(kGiga, 1'000'000'000);
}

}  // namespace
}  // namespace mgs
