// Tests for the hybrid out-of-core sort (P2P group merge + CPU merge).

#include "core/hybrid_sort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/het_sort.h"
#include "topo/systems.h"
#include "util/datagen.h"

namespace mgs::core {
namespace {

struct HybridCase {
  std::string system;
  int gpus;
  std::int64_t n;
  double budget;
  Distribution dist;
};

std::string CaseName(const ::testing::TestParamInfo<HybridCase>& info) {
  const auto& c = info.param;
  std::string s = c.system + "_g" + std::to_string(c.gpus) + "_n" +
                  std::to_string(c.n) + "_b" +
                  std::to_string(static_cast<int>(c.budget));
  std::replace(s.begin(), s.end(), '-', '_');
  return s;
}

class HybridSortSweep : public ::testing::TestWithParam<HybridCase> {};

TEST_P(HybridSortSweep, SortsCorrectly) {
  const auto& c = GetParam();
  auto platform =
      CheckOk(vgpu::Platform::Create(CheckOk(topo::MakeSystem(c.system))));
  DataGenOptions opt;
  opt.distribution = c.dist;
  opt.seed = static_cast<std::uint64_t>(c.n) * 11 + c.gpus;
  auto keys = GenerateKeys<std::int32_t>(c.n, opt);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  HybridOptions options;
  for (int i = 0; i < c.gpus; ++i) options.gpu_set.push_back(i);
  options.gpu_memory_budget = c.budget;
  auto stats = HybridSort(platform.get(), &data, options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(data.vector(), expected);
}

std::vector<HybridCase> MakeCases() {
  std::vector<HybridCase> cases;
  for (const char* sys : {"ac922", "dgx-a100"}) {
    for (int g : {1, 2, 4}) {
      cases.push_back(
          HybridCase{sys, g, 60'000, 0, Distribution::kUniform});
      // Small budget forces several groups (chunk = budget/2 bytes).
      cases.push_back(
          HybridCase{sys, g, 60'000, 40'000, Distribution::kZipf});
    }
  }
  cases.push_back(
      HybridCase{"dgx-a100", 8, 160'001, 40'000, Distribution::kNormal});
  cases.push_back(HybridCase{"ac922", 2, 1, 0, Distribution::kUniform});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HybridSortSweep,
                         ::testing::ValuesIn(MakeCases()), CaseName);

TEST(HybridSortTest, GroupCountAndFanIn) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  DataGenOptions opt;
  auto keys = GenerateKeys<std::int32_t>(120'000, opt);
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  HybridOptions options;
  options.gpu_set = {0, 2};
  options.gpu_memory_budget = 80'000;  // chunk = 10'000 keys, group = 20'000
  auto stats = CheckOk(HybridSort(platform.get(), &data, options));
  EXPECT_EQ(stats.chunk_groups, 6);
  EXPECT_EQ(stats.final_merge_sublists, 6)
      << "one run per group (HET sort would have 12 sublists)";
  EXPECT_TRUE(std::is_sorted(data.vector().begin(), data.vector().end()));
}

TEST(HybridSortTest, RejectsNonPowerOfTwo) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  vgpu::HostBuffer<std::int32_t> data(100);
  HybridOptions options;
  options.gpu_set = {0, 1, 2};
  EXPECT_EQ(HybridSort(platform.get(), &data, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HybridSortTest, BeatsHetOnNvswitchForLargeData) {
  // Section 7's open question, answered in the model: moving the group
  // merge to the GPUs cuts the final CPU merge fan-in and beats HET sort
  // where P2P bandwidth is plentiful.
  const double logical = 60e9;
  auto run = [&](bool hybrid) {
    vgpu::PlatformOptions popts;
    popts.scale = logical / 1'000'000;
    auto platform =
        CheckOk(vgpu::Platform::Create(topo::MakeDgxA100(), popts));
    DataGenOptions opt;
    auto keys = GenerateKeys<std::int32_t>(1'000'000, opt);
    vgpu::HostBuffer<std::int32_t> data(std::move(keys));
    if (hybrid) {
      HybridOptions options;
      options.gpu_memory_budget = 33e9;
      return CheckOk(HybridSort(platform.get(), &data, options))
          .total_seconds;
    }
    HetOptions options;
    options.gpu_memory_budget = 33e9;
    return CheckOk(HetSort(platform.get(), &data, options)).total_seconds;
  };
  const double het = run(false);
  const double hyb = run(true);
  EXPECT_LT(hyb, het) << "HYB=" << hyb << " HET=" << het;
}

}  // namespace
}  // namespace mgs::core
