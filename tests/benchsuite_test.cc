#include "benchsuite/suite.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace mgs::bench {
namespace {

TEST(BenchSuiteTest, AlgoNames) {
  EXPECT_STREQ(AlgoToString(Algo::kP2p), "P2P sort");
  EXPECT_STREQ(AlgoToString(Algo::kHet2nEager), "HET sort (2n+EM)");
  EXPECT_STREQ(AlgoToString(Algo::kCpuParadis), "PARADIS (CPU)");
}

TEST(BenchSuiteTest, EnvKnobs) {
  setenv("MGS_BENCH_ACTUAL_KEYS", "12345", 1);
  EXPECT_EQ(ActualKeyCap(), 12345);
  unsetenv("MGS_BENCH_ACTUAL_KEYS");
  EXPECT_EQ(ActualKeyCap(), 2'000'000);
  setenv("MGS_BENCH_REPEATS", "7", 1);
  EXPECT_EQ(Repeats(), 7);
  unsetenv("MGS_BENCH_REPEATS");
  EXPECT_EQ(Repeats(), 3);
}

TEST(BenchSuiteTest, RunOnceP2p) {
  SortConfig config;
  config.system = "dgx-a100";
  config.algo = Algo::kP2p;
  config.gpus = 2;
  config.logical_keys = 2'000'000'000;
  auto stats = RunOnce(config);
  ASSERT_TRUE(stats.ok()) << stats.status();
  // Fig. 14a: ~0.38 s for 2e9 keys on two DGX GPUs.
  EXPECT_NEAR(stats->total_seconds, 0.38, 0.08);
}

TEST(BenchSuiteTest, RunOnceAllAlgosAllTypes) {
  for (Algo algo : {Algo::kP2p, Algo::kHet2n, Algo::kHet3n,
                    Algo::kCpuParadis}) {
    for (DataType type : {DataType::kInt32, DataType::kFloat64}) {
      SortConfig config;
      config.system = "ac922";
      config.algo = algo;
      config.gpus = 2;
      config.logical_keys = 100'000'000;
      config.type = type;
      auto stats = RunOnce(config);
      ASSERT_TRUE(stats.ok())
          << AlgoToString(algo) << "/" << DataTypeToString(type) << ": "
          << stats.status();
      EXPECT_GT(stats->total_seconds, 0);
    }
  }
}

TEST(BenchSuiteTest, RunManyAveragesRepeats) {
  setenv("MGS_BENCH_REPEATS", "2", 1);
  SortConfig config;
  config.system = "delta-d22x";
  config.algo = Algo::kHet2n;
  config.gpus = 4;
  config.logical_keys = 500'000'000;
  core::SortStats last;
  auto stats = RunMany(config, &last);
  unsetenv("MGS_BENCH_REPEATS");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->count(), 2u);
  EXPECT_EQ(last.num_gpus, 4);
}

TEST(BenchSuiteTest, KeysLabelFormat) {
  EXPECT_EQ(KeysLabel(2'000'000'000), "2");
  EXPECT_EQ(KeysLabel(500'000'000), "0.5");
  EXPECT_EQ(KeysLabel(16'000'000'000), "16");
}

TEST(BenchSuiteTest, UnknownSystemFails) {
  SortConfig config;
  config.system = "dgx-h100";
  config.algo = Algo::kP2p;
  config.gpus = 2;
  config.logical_keys = 1000;
  EXPECT_FALSE(RunOnce(config).ok());
}

}  // namespace
}  // namespace mgs::bench
