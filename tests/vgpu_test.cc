// Tests for the virtual GPU runtime: allocation accounting, stream FIFO
// semantics, copy engines, events, scale model, and timing of copies.

#include "vgpu/platform.h"

#include <gtest/gtest.h>

#include <numeric>

#include "topo/systems.h"
#include "util/units.h"

namespace mgs::vgpu {
namespace {

std::unique_ptr<Platform> MakeDgx(double scale = 1.0) {
  PlatformOptions options;
  options.scale = scale;
  return CheckOk(Platform::Create(topo::MakeDgxA100(), options));
}

std::unique_ptr<Platform> MakeAc922(double scale = 1.0) {
  PlatformOptions options;
  options.scale = scale;
  return CheckOk(Platform::Create(topo::MakeAc922(), options));
}

TEST(PlatformTest, CreateFromPresets) {
  auto dgx = MakeDgx();
  EXPECT_EQ(dgx->num_devices(), 8);
  EXPECT_EQ(dgx->device(3).id(), 3);
  EXPECT_EQ(dgx->device(4).numa_socket(), 1);
  EXPECT_DOUBLE_EQ(dgx->device(0).memory_capacity(), 40 * kGB);
}

TEST(PlatformTest, RejectsBadScale) {
  PlatformOptions options;
  options.scale = 0.5;
  EXPECT_FALSE(Platform::Create(topo::MakeDgxA100(), options).ok());
  EXPECT_FALSE(Platform::Create(nullptr, PlatformOptions{}).ok());
}

TEST(DeviceTest, AllocationAccounting) {
  auto p = MakeDgx();
  auto& dev = p->device(0);
  const double before = dev.memory_free();
  {
    auto buf = CheckOk(dev.Allocate<std::int32_t>(1'000'000));
    EXPECT_EQ(buf.size(), 1'000'000);
    EXPECT_DOUBLE_EQ(dev.memory_free(), before - 4e6);
  }
  EXPECT_DOUBLE_EQ(dev.memory_free(), before) << "buffer frees on destroy";
}

TEST(DeviceTest, AllocationFailsWhenFull) {
  auto p = MakeDgx();
  auto& dev = p->device(0);
  // 40 GB capacity: a 6e9-element int64 buffer (48 GB) must fail.
  auto r = dev.Allocate<std::int64_t>(6'000'000'000);
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfMemory);
}

TEST(DeviceTest, ScaleMultipliesLogicalFootprint) {
  auto p = MakeDgx(/*scale=*/100.0);
  auto& dev = p->device(0);
  // 1e6 actual int32 elements = 4 MB actual, 400 MB logical.
  auto buf = CheckOk(dev.Allocate<std::int32_t>(1'000'000));
  EXPECT_DOUBLE_EQ(dev.memory_used(), 4e8);
}

TEST(DeviceTest, MaxBufferElements) {
  // Scale 1e6 keeps actual allocations tiny while logical sizes fill the
  // 40 GB device.
  auto p = MakeDgx(/*scale=*/1e6);
  auto& dev = p->device(0);
  const std::int64_t per3 = dev.MaxBufferElements<std::int32_t>(3);
  EXPECT_NEAR(static_cast<double>(per3), 40e9 / 1e6 / 3 / 4, 2.0);
  auto a = CheckOk(dev.Allocate<std::int32_t>(per3));
  auto b = CheckOk(dev.Allocate<std::int32_t>(per3));
  auto c = CheckOk(dev.Allocate<std::int32_t>(per3));
  EXPECT_FALSE(dev.Allocate<std::int32_t>(per3).ok());
}

TEST(StreamTest, HtoDThenDtoHRoundTrip) {
  auto p = MakeDgx();
  auto& dev = p->device(0);
  const std::int64_t n = 1000;
  HostBuffer<std::int32_t> host_in(n), host_out(n);
  std::iota(host_in.data(), host_in.data() + n, 100);
  auto dbuf = CheckOk(dev.Allocate<std::int32_t>(n));
  auto& s = dev.stream(0);
  s.MemcpyHtoDAsync(dbuf, 0, host_in, 0, n);
  s.MemcpyDtoHAsync(host_out, 0, dbuf, 0, n);
  auto root = [&]() -> sim::Task<void> { co_await s.Synchronize(); };
  CheckOk(p->Run(root()).status());
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(host_out[i], host_in[i]);
  }
}

TEST(StreamTest, CopyTimingMatchesTopology) {
  // 4 GB over a 25 GB/s PCIe 4.0 path: 0.16 s.
  auto p = MakeDgx();
  auto& dev = p->device(0);
  const std::int64_t n = 1'000'000'000;  // 4 GB of int32
  HostBuffer<std::int32_t> host(1);      // host ranges are checked:
  // allocate a real (small) host buffer but a full-size device buffer and
  // time a device-scaled copy instead: use scale for the big copy.
  auto p2 = MakeDgx(/*scale=*/1'000'000.0);
  auto& dev2 = p2->device(0);
  HostBuffer<std::int32_t> small(1000);
  auto dbuf = CheckOk(dev2.Allocate<std::int32_t>(1000));
  auto& s = dev2.stream(0);
  s.MemcpyHtoDAsync(dbuf, 0, small, 0, 1000);  // 4 GB logical
  auto root = [&]() -> sim::Task<void> { co_await s.Synchronize(); };
  const double took = CheckOk(p2->Run(root()));
  EXPECT_NEAR(took, 4e9 / (25 * kGB), 1e-5);  // + wire/launch latency
  (void)dev;
  (void)n;
  (void)host;
}

TEST(StreamTest, OpsOnOneStreamAreFifo) {
  auto p = MakeDgx();
  auto& dev = p->device(0);
  std::vector<int> order;
  auto& s = dev.stream(0);
  s.LaunchAsync(1.0, [&] { order.push_back(1); });
  s.LaunchAsync(0.0, [&] { order.push_back(2); });
  auto root = [&]() -> sim::Task<void> { co_await s.Synchronize(); };
  CheckOk(p->Run(root()).status());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(StreamTest, KernelsOnDistinctDevicesOverlap) {
  auto p = MakeDgx();
  auto root = [&]() -> sim::Task<void> {
    p->device(0).stream(0).LaunchAsync(2.0, [] {});
    p->device(1).stream(0).LaunchAsync(2.0, [] {});
    co_await p->device(0).stream(0).Synchronize();
    co_await p->device(1).stream(0).Synchronize();
  };
  EXPECT_NEAR(CheckOk(p->Run(root())), 2.0, 1e-9);
}

TEST(StreamTest, KernelsOnOneDeviceSerializeAcrossStreams) {
  // One compute queue per GPU: two kernels on different streams of the same
  // device still execute back-to-back.
  auto p = MakeDgx();
  auto& dev = p->device(0);
  auto root = [&]() -> sim::Task<void> {
    dev.stream(0).LaunchAsync(2.0, [] {});
    dev.stream(1).LaunchAsync(2.0, [] {});
    co_await dev.stream(0).Synchronize();
    co_await dev.stream(1).Synchronize();
  };
  EXPECT_NEAR(CheckOk(p->Run(root())), 4.0, 1e-9);
}

TEST(StreamTest, HtoDAndDtoHOverlapViaSeparateEngines) {
  // Bidirectional copy on one GPU: in/out engines run concurrently; the
  // AC922 NVLink duplex budget (127 GB/s) is the only coupling.
  auto p = MakeAc922();
  auto& dev = p->device(0);
  const std::int64_t n = 1000;
  HostBuffer<std::int32_t> h_in(n), h_out(n);
  auto p2 = MakeAc922(/*scale=*/1'000'000.0);
  auto& d2 = p2->device(0);
  HostBuffer<std::int32_t> in2(1000), out2(1000);
  auto da = CheckOk(d2.Allocate<std::int32_t>(1000));
  auto db = CheckOk(d2.Allocate<std::int32_t>(1000));
  d2.stream(0).MemcpyHtoDAsync(da, 0, in2, 0, 1000);   // 4 GB logical
  d2.stream(1).MemcpyDtoHAsync(out2, 0, db, 0, 1000);  // 4 GB logical
  auto root = [&]() -> sim::Task<void> {
    co_await d2.stream(0).Synchronize();
    co_await d2.stream(1).Synchronize();
  };
  const double took = CheckOk(p2->Run(root()));
  // Each direction gets 63.5 GB/s under the 127 duplex cap: 4/63.5 s.
  EXPECT_NEAR(took, 4e9 / (63.5 * kGB), 1e-3);
  (void)dev;
  (void)h_in;
  (void)h_out;
}

TEST(StreamTest, SameDirectionCopiesSerializeOnEngine) {
  auto p = MakeAc922(/*scale=*/1'000'000.0);
  auto& dev = p->device(0);
  HostBuffer<std::int32_t> host(2000);
  auto da = CheckOk(dev.Allocate<std::int32_t>(1000));
  auto db = CheckOk(dev.Allocate<std::int32_t>(1000));
  // Two 4 GB HtoD copies on *different streams* share the one in-engine:
  // total 8 GB at 72 GB/s.
  dev.stream(0).MemcpyHtoDAsync(da, 0, host, 0, 1000);
  dev.stream(1).MemcpyHtoDAsync(db, 0, host, 1000, 1000);
  auto root = [&]() -> sim::Task<void> {
    co_await dev.stream(0).Synchronize();
    co_await dev.stream(1).Synchronize();
  };
  const double took = CheckOk(p->Run(root()));
  EXPECT_NEAR(took, 8e9 / (72 * kGB), 1e-3);
}

TEST(StreamTest, EventsOrderAcrossStreams) {
  auto p = MakeDgx();
  auto& dev = p->device(0);
  std::vector<int> order;
  auto& s0 = dev.stream(0);
  auto& s1 = dev.stream(1);
  s0.LaunchAsync(1.0, [&] { order.push_back(1); });
  auto ev = s0.RecordEvent();
  s1.WaitEvent(ev);
  s1.LaunchAsync(0.5, [&] { order.push_back(2); });
  auto root = [&]() -> sim::Task<void> {
    co_await s1.Synchronize();
  };
  const double took = CheckOk(p->Run(root()));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_NEAR(took, 1.5, 1e-9);
}

TEST(StreamTest, PeerCopyMovesData) {
  auto p = MakeDgx();
  auto& d0 = p->device(0);
  auto& d1 = p->device(1);
  const std::int64_t n = 256;
  HostBuffer<std::int32_t> h_in(n), h_out(n);
  std::iota(h_in.data(), h_in.data() + n, -7);
  auto b0 = CheckOk(d0.Allocate<std::int32_t>(n));
  auto b1 = CheckOk(d1.Allocate<std::int32_t>(n));
  d0.stream(0).MemcpyHtoDAsync(b0, 0, h_in, 0, n);
  auto ev = d0.stream(0).RecordEvent();
  d1.stream(0).WaitEvent(ev);
  d1.stream(0).MemcpyPeerAsync(b1, 0, b0, 0, n);
  d1.stream(0).MemcpyDtoHAsync(h_out, 0, b1, 0, n);
  auto root = [&]() -> sim::Task<void> {
    co_await d1.stream(0).Synchronize();
  };
  CheckOk(p->Run(root()).status());
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(h_out[i], h_in[i]);
}

TEST(StreamTest, InPlaceTransferSwapIsSafe) {
  // The 3n pipeline's trick (Fig. 10): one buffer simultaneously sends its
  // old content DtoH and receives new content HtoD. Snapshot-at-start /
  // materialize-at-completion semantics must deliver the old data to the
  // host and the new data to the device.
  auto p = MakeDgx();
  auto& dev = p->device(0);
  const std::int64_t n = 128;
  HostBuffer<std::int32_t> h_new(n), h_out(n), h_seed(n);
  for (std::int64_t i = 0; i < n; ++i) {
    h_seed[i] = static_cast<std::int32_t>(i);
    h_new[i] = static_cast<std::int32_t>(1000 + i);
  }
  auto buf = CheckOk(dev.Allocate<std::int32_t>(n));
  dev.stream(0).MemcpyHtoDAsync(buf, 0, h_seed, 0, n);
  auto seeded = dev.stream(0).RecordEvent();
  dev.stream(1).WaitEvent(seeded);
  dev.stream(2).WaitEvent(seeded);
  dev.stream(1).MemcpyDtoHAsync(h_out, 0, buf, 0, n);   // old content out
  dev.stream(2).MemcpyHtoDAsync(buf, 0, h_new, 0, n);   // new content in
  auto root = [&]() -> sim::Task<void> {
    co_await dev.stream(1).Synchronize();
    co_await dev.stream(2).Synchronize();
  };
  CheckOk(p->Run(root()).status());
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(h_out[i], h_seed[i]) << "host must receive the old content";
    EXPECT_EQ(buf[i], h_new[i]) << "device must hold the new content";
  }
}

TEST(PlatformTest, CpuBusyAdvancesClock) {
  auto p = MakeDgx();
  auto root = [&]() -> sim::Task<void> { co_await p->CpuBusy(3.25); };
  EXPECT_NEAR(CheckOk(p->Run(root())), 3.25, 1e-12);
}

TEST(PlatformTest, CpuMemoryWorkBoundByMergeEngine) {
  auto p = MakeDgx();
  // 8.9 GB of merged output at the DGX's 44.5 GB/s merge budget: 0.2 s.
  auto root = [&]() -> sim::Task<void> {
    co_await p->CpuMemoryWork(0, 8.9 * kGB, 2.0, 1.0);
  };
  EXPECT_NEAR(CheckOk(p->Run(root())), 0.2, 1e-3);
}

TEST(PlatformTest, CpuMemoryWorkContendsWithTransfers) {
  // A CPU merge and heavy bidirectional transfers on the same NUMA node
  // must slow each other down (the eager-merging effect, Section 6.2).
  auto alone = MakeDgx(1e6);
  auto merge_only = [&]() -> sim::Task<void> {
    co_await alone->CpuMemoryWork(0, 50 * kGB, 2.5, 1.0);
  };
  const double t_alone = CheckOk(alone->Run(merge_only()));

  auto busy = MakeDgx(1e6);
  HostBuffer<std::int32_t> host(8000);
  std::vector<DeviceBuffer<std::int32_t>> bufs;
  for (int g = 0; g < 8; ++g) {
    bufs.push_back(CheckOk(busy->device(g).Allocate<std::int32_t>(1000)));
  }
  auto merge_and_copy = [&]() -> sim::Task<void> {
    for (int g = 0; g < 8; ++g) {
      busy->device(g).stream(0).MemcpyHtoDAsync(bufs[static_cast<std::size_t>(g)], 0, host,
                                                g * 1000, 1000);
    }
    co_await busy->CpuMemoryWork(0, 50 * kGB, 2.5, 1.0);
  };
  const double t_busy = CheckOk(busy->Run(merge_and_copy()));
  EXPECT_GT(t_busy, t_alone * 1.1)
      << "transfers and merge share host memory bandwidth";
}

}  // namespace
}  // namespace mgs::vgpu
