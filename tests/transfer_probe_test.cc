#include "topo/transfer_probe.h"

#include <gtest/gtest.h>

#include "topo/systems.h"
#include "util/units.h"

namespace mgs::topo {
namespace {

TEST(TransferProbeTest, ScenarioBuilders) {
  auto op = TransferProbe::HtoD(3, 4 * kGB, 1);
  EXPECT_EQ(op.kind, CopyKind::kHostToDevice);
  EXPECT_EQ(op.src.kind, Endpoint::Kind::kHostMemory);
  EXPECT_EQ(op.src.id, 1);
  EXPECT_EQ(op.dst.id, 3);

  auto bidi = TransferProbe::Bidirectional({0, 2}, kGB);
  ASSERT_EQ(bidi.size(), 4u);
  EXPECT_EQ(bidi[0].kind, CopyKind::kHostToDevice);
  EXPECT_EQ(bidi[1].kind, CopyKind::kDeviceToHost);

  auto ring = TransferProbe::P2pRing({0, 1, 2, 3}, kGB);
  ASSERT_EQ(ring.size(), 4u);  // 0<->3 and 1<->2, both directions
  EXPECT_EQ(ring[0].src.id, 0);
  EXPECT_EQ(ring[0].dst.id, 3);
  EXPECT_EQ(ring[2].src.id, 1);
  EXPECT_EQ(ring[2].dst.id, 2);
}

TEST(TransferProbeTest, PerOpDurations) {
  TransferProbe probe(MakeDeltaD22x());
  auto result = CheckOk(probe.Run({TransferProbe::HtoD(0, 12 * kGB)}));
  ASSERT_EQ(result.op_durations.size(), 1u);
  EXPECT_NEAR(result.op_durations[0], 1.0, 1e-5);  // 12 GB at 12 GB/s (+latency)
  EXPECT_NEAR(result.makespan_seconds, 1.0, 1e-5);
}

TEST(TransferProbeTest, MakespanIsSlowestOp) {
  TransferProbe probe(MakeAc922());
  // Local (72 GB/s) and remote (41 GB/s) HtoD of 4 GB each.
  auto result = CheckOk(probe.Run(
      {TransferProbe::HtoD(0, 4 * kGB), TransferProbe::HtoD(2, 4 * kGB)}));
  EXPECT_GT(result.op_durations[1], result.op_durations[0]);
  EXPECT_DOUBLE_EQ(result.makespan_seconds, result.op_durations[1]);
}

TEST(TransferProbeTest, ConsecutiveRunsAreIndependent) {
  TransferProbe probe(MakeDgxA100());
  auto first = CheckOk(probe.Run({TransferProbe::PtoP(0, 1, 4 * kGB)}));
  auto second = CheckOk(probe.Run({TransferProbe::PtoP(0, 1, 4 * kGB)}));
  EXPECT_DOUBLE_EQ(first.aggregate_throughput, second.aggregate_throughput);
}

TEST(TransferProbeTest, InvalidOpIsRejected) {
  TransferProbe probe(MakeAc922());
  auto bad = probe.Run({TransferOp{CopyKind::kPeerToPeer, Endpoint::Gpu(0),
                                   Endpoint::Gpu(0), kGB}});
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace mgs::topo
