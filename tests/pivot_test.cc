// Tests for leftmost pivot selection (Algorithm 1).

#include "core/pivot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/datagen.h"

namespace mgs::core {
namespace {

PivotResult Select(const std::vector<int>& a, const std::vector<int>& b) {
  EXPECT_EQ(a.size(), b.size());
  KeyReader<int> ra = [&a](std::int64_t i) { return a[static_cast<std::size_t>(i)]; };
  KeyReader<int> rb = [&b](std::int64_t i) { return b[static_cast<std::size_t>(i)]; };
  return SelectPivot<int>(ra, rb, static_cast<std::int64_t>(a.size()));
}

// Checks p is valid: after swapping the last p of A with the first p of B,
// max over new-A <= min over new-B.
void ExpectValid(const std::vector<int>& a, const std::vector<int>& b,
                 std::int64_t p) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  int max_a = std::numeric_limits<int>::min();
  int min_b = std::numeric_limits<int>::max();
  for (std::int64_t i = 0; i < n - p; ++i) max_a = std::max(max_a, a[static_cast<std::size_t>(i)]);
  for (std::int64_t i = 0; i < p; ++i) max_a = std::max(max_a, b[static_cast<std::size_t>(i)]);
  for (std::int64_t i = n - p; i < n; ++i) min_b = std::min(min_b, a[static_cast<std::size_t>(i)]);
  for (std::int64_t i = p; i < n; ++i) min_b = std::min(min_b, b[static_cast<std::size_t>(i)]);
  EXPECT_LE(max_a, min_b) << "pivot " << p << " is not valid";
}

TEST(PivotTest, PaperFigure8Example) {
  // A = [7,11,12,16], B = [2,9,13,15]: the paper swaps two keys.
  const PivotResult r = Select({7, 11, 12, 16}, {2, 9, 13, 15});
  EXPECT_EQ(r.pivot, 2);
}

TEST(PivotTest, AlreadyOrderedHalvesNeedNoSwap) {
  const PivotResult r = Select({1, 2, 3, 4}, {5, 6, 7, 8});
  EXPECT_EQ(r.pivot, 0) << "leftmost pivot skips the swap entirely";
}

TEST(PivotTest, FullyReversedHalvesSwapEverything) {
  const PivotResult r = Select({5, 6, 7, 8}, {1, 2, 3, 4});
  EXPECT_EQ(r.pivot, 4);
}

TEST(PivotTest, AllEqualKeysNeedNoSwap) {
  const PivotResult r = Select({7, 7, 7, 7}, {7, 7, 7, 7});
  EXPECT_EQ(r.pivot, 0)
      << "duplicates must not be exchanged (minimal-transfer guarantee)";
}

TEST(PivotTest, InterleavedHalves) {
  const PivotResult r = Select({1, 3, 5, 7}, {2, 4, 6, 8});
  ExpectValid({1, 3, 5, 7}, {2, 4, 6, 8}, r.pivot);
}

TEST(PivotTest, EmptyArrays) {
  const PivotResult r = Select({}, {});
  EXPECT_EQ(r.pivot, 0);
}

TEST(PivotTest, SingleElement) {
  EXPECT_EQ(Select({5}, {3}).pivot, 1);
  EXPECT_EQ(Select({3}, {5}).pivot, 0);
  EXPECT_EQ(Select({4}, {4}).pivot, 0);
}

TEST(PivotTest, LogarithmicReadCount) {
  const std::int64_t n = 1 << 20;
  std::vector<int> a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] = static_cast<int>(2 * i + 1);
    b[static_cast<std::size_t>(i)] = static_cast<int>(2 * i);
  }
  const PivotResult r = Select(a, b);
  ExpectValid(a, b, r.pivot);
  EXPECT_LE(r.reads, 2 * 21) << "binary search: at most 2 reads per step";
}

class PivotPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PivotPropertyTest, LeftmostValidPivotOnRandomHalves) {
  DataGenOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  const std::int64_t n = 200 + GetParam() * 37;
  auto all = GenerateKeys<std::int32_t>(2 * n, opt);
  std::vector<int> a(all.begin(), all.begin() + n);
  std::vector<int> b(all.begin() + n, all.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const PivotResult r = Select(a, b);
  ExpectValid(a, b, r.pivot);
  if (r.pivot > 0) {
    // Leftmost: p-1 must NOT be valid. Validity of p-1 requires
    // a[n-p] <= b[p-1]; r.pivot's minimality means that fails.
    const std::int64_t p = r.pivot;
    EXPECT_GT(a[static_cast<std::size_t>(n - p)],
              b[static_cast<std::size_t>(p - 1)])
        << "pivot is not leftmost";
  }
}

TEST_P(PivotPropertyTest, DuplicateHeavyHalves) {
  DataGenOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam()) + 77;
  opt.distribution = Distribution::kZipf;
  const std::int64_t n = 500;
  auto all = GenerateKeys<std::int32_t>(2 * n, opt);
  std::vector<int> a(all.begin(), all.begin() + n);
  std::vector<int> b(all.begin() + n, all.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const PivotResult r = Select(a, b);
  ExpectValid(a, b, r.pivot);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PivotPropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace mgs::core
