// Correctness tests for the CPU sorting substrate: radix traits, LSB radix
// sort, PARADIS-style in-place radix sort, merge sort, loser tree, and
// parallel multiway merge. Parameterized sweeps act as property tests
// against std::sort / std::merge oracles.

#include "cpusort/cpusort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "util/datagen.h"
#include "util/thread_pool.h"

namespace mgs::cpusort {
namespace {

// ---------------------------------------------------------------------------
// RadixTraits
// ---------------------------------------------------------------------------

template <typename T>
class RadixTraitsTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<std::int32_t, std::int64_t, float, double,
                                  std::uint32_t, std::uint64_t>;
TYPED_TEST_SUITE(RadixTraitsTest, KeyTypes);

TYPED_TEST(RadixTraitsTest, EncodePreservesOrder) {
  using T = TypeParam;
  DataGenOptions opt;
  opt.seed = 11;
  std::vector<T> keys;
  if constexpr (std::is_same_v<T, std::uint32_t>) {
    SplitMix64 rng(1);
    for (int i = 0; i < 2000; ++i) {
      keys.push_back(static_cast<std::uint32_t>(rng.Next()));
    }
  } else if constexpr (std::is_same_v<T, std::uint64_t>) {
    SplitMix64 rng(2);
    for (int i = 0; i < 2000; ++i) keys.push_back(rng.Next());
  } else {
    keys = GenerateKeys<T>(2000, opt);
  }
  keys.push_back(std::numeric_limits<T>::max());
  keys.push_back(std::numeric_limits<T>::lowest());
  keys.push_back(T{0});
  for (std::size_t i = 0; i + 1 < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      const bool lt = keys[i] < keys[j];
      const bool enc_lt = RadixTraits<T>::Encode(keys[i]) <
                          RadixTraits<T>::Encode(keys[j]);
      EXPECT_EQ(lt, enc_lt) << keys[i] << " vs " << keys[j];
    }
  }
}

TYPED_TEST(RadixTraitsTest, DecodeInvertsEncode) {
  using T = TypeParam;
  DataGenOptions opt;
  opt.seed = 3;
  std::vector<T> keys;
  if constexpr (std::is_same_v<T, std::uint32_t> ||
                std::is_same_v<T, std::uint64_t>) {
    SplitMix64 rng(3);
    for (int i = 0; i < 1000; ++i) keys.push_back(static_cast<T>(rng.Next()));
  } else {
    keys = GenerateKeys<T>(1000, opt);
  }
  for (T k : keys) {
    EXPECT_EQ(RadixTraits<T>::Decode(RadixTraits<T>::Encode(k)), k);
  }
}

TEST(RadixDigitTest, ExtractsBytesOfEncodedKey) {
  // 0 encodes to 0x80000000 for int32.
  EXPECT_EQ(RadixDigit(std::int32_t{0}, 3), 0x80u);
  EXPECT_EQ(RadixDigit(std::int32_t{0}, 0), 0x00u);
  EXPECT_EQ(RadixDigit(std::int32_t{0x01020304}, 0), 0x04u);
  EXPECT_EQ(RadixDigit(std::int32_t{0x01020304}, 2), 0x02u);
}

// ---------------------------------------------------------------------------
// Sorting algorithms: property sweep over sizes x distributions x types
// ---------------------------------------------------------------------------

enum class CpuAlgo { kLsbRadix, kParadis, kMergeSort };

const char* AlgoName(CpuAlgo a) {
  switch (a) {
    case CpuAlgo::kLsbRadix:
      return "lsb_radix";
    case CpuAlgo::kParadis:
      return "paradis";
    case CpuAlgo::kMergeSort:
      return "merge_sort";
  }
  return "?";
}

struct SortCase {
  CpuAlgo algo;
  Distribution dist;
  std::int64_t n;
  int threads;  // 0 = no pool
};

std::string CaseName(const ::testing::TestParamInfo<SortCase>& info) {
  const auto& c = info.param;
  std::string s = AlgoName(c.algo);
  s += "_";
  for (char ch : std::string(DistributionToString(c.dist))) {
    s += ch == '-' ? '_' : ch;
  }
  s += "_n" + std::to_string(c.n) + "_t" + std::to_string(c.threads);
  return s;
}

template <typename T>
void RunSort(CpuAlgo algo, T* data, std::int64_t n, ThreadPool* pool) {
  std::vector<T> aux(static_cast<std::size_t>(n));
  switch (algo) {
    case CpuAlgo::kLsbRadix:
      LsbRadixSort(data, aux.data(), n, pool);
      break;
    case CpuAlgo::kParadis:
      ParadisSort(data, n, pool);
      break;
    case CpuAlgo::kMergeSort:
      MergeSort(data, aux.data(), n, pool);
      break;
  }
}

class CpuSortSweep : public ::testing::TestWithParam<SortCase> {};

TEST_P(CpuSortSweep, MatchesStdSortInt32) {
  const auto& c = GetParam();
  DataGenOptions opt;
  opt.distribution = c.dist;
  opt.seed = static_cast<std::uint64_t>(c.n) * 31 + 7;
  auto data = GenerateKeys<std::int32_t>(c.n, opt);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  std::unique_ptr<ThreadPool> pool;
  if (c.threads > 0) pool = std::make_unique<ThreadPool>(c.threads);
  RunSort(c.algo, data.data(), c.n, pool.get());
  EXPECT_EQ(data, expected);
}

TEST_P(CpuSortSweep, MatchesStdSortFloat64) {
  const auto& c = GetParam();
  DataGenOptions opt;
  opt.distribution = c.dist;
  opt.seed = static_cast<std::uint64_t>(c.n) * 13 + 1;
  auto data = GenerateKeys<double>(c.n, opt);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  std::unique_ptr<ThreadPool> pool;
  if (c.threads > 0) pool = std::make_unique<ThreadPool>(c.threads);
  RunSort(c.algo, data.data(), c.n, pool.get());
  EXPECT_EQ(data, expected);
}

std::vector<SortCase> MakeSortCases() {
  std::vector<SortCase> cases;
  const Distribution dists[] = {
      Distribution::kUniform, Distribution::kNormal, Distribution::kSorted,
      Distribution::kReverseSorted, Distribution::kNearlySorted,
      Distribution::kZipf};
  for (CpuAlgo algo :
       {CpuAlgo::kLsbRadix, CpuAlgo::kParadis, CpuAlgo::kMergeSort}) {
    for (Distribution d : dists) {
      for (std::int64_t n : {0, 1, 2, 100, 4096, 100'000}) {
        for (int threads : {0, 4}) {
          cases.push_back(SortCase{algo, d, n, threads});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CpuSortSweep,
                         ::testing::ValuesIn(MakeSortCases()), CaseName);

TEST(CpuSortEdgeTest, AllDuplicates) {
  std::vector<std::int32_t> data(10000, 42);
  ParadisSort(data.data(), 10000);
  EXPECT_TRUE(std::all_of(data.begin(), data.end(),
                          [](std::int32_t v) { return v == 42; }));
  std::vector<std::int32_t> aux(10000);
  LsbRadixSort(data.data(), aux.data(), 10000);
  EXPECT_EQ(data[0], 42);
}

TEST(CpuSortEdgeTest, TwoDistinctValues) {
  std::vector<std::int32_t> data;
  SplitMix64 rng(5);
  for (int i = 0; i < 50000; ++i) data.push_back(rng.Next() % 2 ? 1 : -1);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  ThreadPool pool(4);
  ParadisSort(data.data(), static_cast<std::int64_t>(data.size()), &pool);
  EXPECT_EQ(data, expected);
}

TEST(CpuSortEdgeTest, ExtremesAndZeros) {
  std::vector<std::int64_t> data = {
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(),
      0,
      -1,
      1,
      std::numeric_limits<std::int64_t>::min() + 1,
      std::numeric_limits<std::int64_t>::max() - 1};
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  ParadisSort(data.data(), static_cast<std::int64_t>(data.size()));
  EXPECT_EQ(data, expected);
}

TEST(CpuSortEdgeTest, NegativeAndPositiveFloats) {
  std::vector<float> data = {-0.0f, 0.0f, -1e30f, 1e30f, -1.5f,
                             1.5f,  -1e-30f, 1e-30f};
  std::vector<float> aux(data.size());
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  LsbRadixSort(data.data(), aux.data(),
               static_cast<std::int64_t>(data.size()));
  // -0.0 == 0.0 compares equal; compare bitwise-insensitive via values.
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], expected[i]);
  }
}

// ---------------------------------------------------------------------------
// LoserTree
// ---------------------------------------------------------------------------

TEST(LoserTreeTest, MergesThreeSources) {
  std::vector<int> a{1, 4, 7}, b{2, 5, 8}, c{3, 6, 9};
  std::vector<LoserTree<int>::Source> sources{
      {a.data(), a.data() + a.size()},
      {b.data(), b.data() + b.size()},
      {c.data(), c.data() + c.size()}};
  LoserTree<int> tree(std::move(sources));
  std::vector<int> out;
  while (!tree.Empty()) {
    out.push_back(tree.Top());
    tree.Pop();
  }
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(LoserTreeTest, SingleSource) {
  std::vector<int> a{1, 2, 3};
  std::vector<LoserTree<int>::Source> sources{{a.data(), a.data() + 3}};
  LoserTree<int> tree(std::move(sources));
  std::vector<int> out;
  while (!tree.Empty()) {
    out.push_back(tree.Top());
    tree.Pop();
  }
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(LoserTreeTest, EmptySources) {
  std::vector<int> a;
  LoserTree<int> tree({{a.data(), a.data()}, {a.data(), a.data()}});
  EXPECT_TRUE(tree.Empty());
}

TEST(LoserTreeTest, SkewedSizes) {
  std::vector<int> a{5}, b;
  for (int i = 0; i < 100; ++i) b.push_back(i);
  LoserTree<int> tree(
      {{a.data(), a.data() + 1}, {b.data(), b.data() + 100}});
  std::vector<int> out;
  while (!tree.Empty()) {
    out.push_back(tree.Top());
    tree.Pop();
  }
  EXPECT_EQ(out.size(), 101u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(LoserTreeTest, StableOnTies) {
  // Equal keys must come from lower-indexed sources first.
  std::vector<std::pair<int, int>> a{{1, 0}}, b{{1, 1}}, c{{1, 2}};
  LoserTree<std::pair<int, int>> tree({{a.data(), a.data() + 1},
                                       {b.data(), b.data() + 1},
                                       {c.data(), c.data() + 1}});
  std::vector<int> sources;
  while (!tree.Empty()) {
    sources.push_back(tree.Top().second);
    tree.Pop();
  }
  EXPECT_EQ(sources, (std::vector<int>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// MultiwayMerge
// ---------------------------------------------------------------------------

struct MergeCase {
  int k;
  std::int64_t per_list;
  int threads;
  Distribution dist;
};

std::string MergeCaseName(const ::testing::TestParamInfo<MergeCase>& info) {
  const auto& c = info.param;
  std::string s = "k" + std::to_string(c.k) + "_n" +
                  std::to_string(c.per_list) + "_t" +
                  std::to_string(c.threads) + "_";
  for (char ch : std::string(DistributionToString(c.dist))) {
    s += ch == '-' ? '_' : ch;
  }
  return s;
}

class MultiwayMergeSweep : public ::testing::TestWithParam<MergeCase> {};

TEST_P(MultiwayMergeSweep, ProducesGloballySortedOutput) {
  const auto& c = GetParam();
  DataGenOptions opt;
  opt.distribution = c.dist;
  std::vector<std::vector<std::int64_t>> lists(
      static_cast<std::size_t>(c.k));
  std::vector<std::int64_t> expected;
  for (int i = 0; i < c.k; ++i) {
    opt.seed = static_cast<std::uint64_t>(i) * 101 + 9;
    // Vary sizes a little across lists.
    const std::int64_t n = c.per_list + (i % 3) * 7;
    lists[static_cast<std::size_t>(i)] =
        GenerateKeys<std::int64_t>(n, opt);
    std::sort(lists[static_cast<std::size_t>(i)].begin(),
              lists[static_cast<std::size_t>(i)].end());
    expected.insert(expected.end(), lists[static_cast<std::size_t>(i)].begin(),
                    lists[static_cast<std::size_t>(i)].end());
  }
  std::sort(expected.begin(), expected.end());

  std::unique_ptr<ThreadPool> pool;
  if (c.threads > 0) pool = std::make_unique<ThreadPool>(c.threads);
  std::vector<std::int64_t> out;
  MultiwayMerge(lists, &out, pool.get());
  EXPECT_EQ(out, expected);
}

std::vector<MergeCase> MakeMergeCases() {
  std::vector<MergeCase> cases;
  for (int k : {1, 2, 3, 4, 8, 16, 33}) {
    for (std::int64_t n : {0, 1, 50, 5000}) {
      for (int threads : {0, 4}) {
        cases.push_back(MergeCase{k, n, threads, Distribution::kUniform});
      }
    }
  }
  // Duplicate-heavy workloads exercise the multisequence selection's
  // equal-key distribution logic.
  for (int k : {2, 4, 8}) {
    cases.push_back(MergeCase{k, 10000, 4, Distribution::kZipf});
    cases.push_back(MergeCase{k, 10000, 4, Distribution::kSorted});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MultiwayMergeSweep,
                         ::testing::ValuesIn(MakeMergeCases()), MergeCaseName);

TEST(MultiwayMergeTest, EmptyInputs) {
  std::vector<std::vector<int>> lists;
  std::vector<int> out{1, 2, 3};
  MultiwayMerge(lists, &out);
  EXPECT_TRUE(out.empty());
}

TEST(MultiwayMergeTest, AllDuplicatesAcrossManyLists) {
  ThreadPool pool(4);
  std::vector<std::vector<int>> lists(8, std::vector<int>(5000, 7));
  std::vector<int> out;
  MultiwayMerge(lists, &out, &pool);
  EXPECT_EQ(out.size(), 40000u);
  EXPECT_TRUE(std::all_of(out.begin(), out.end(),
                          [](int v) { return v == 7; }));
}

TEST(MultiwayMergeTest, RawPointerInterface) {
  std::vector<int> a{1, 3, 5}, b{2, 4, 6};
  std::vector<int> out(6);
  std::vector<MergeInput<int>> inputs{{a.data(), a.data() + 3},
                                      {b.data(), b.data() + 3}};
  MultiwayMerge(inputs, out.data());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(MultisequenceSelectTest, SplitsAtExactRank) {
  std::vector<int> a{1, 3, 5, 7}, b{2, 4, 6, 8};
  std::vector<MergeInput<int>> inputs{{a.data(), a.data() + 4},
                                      {b.data(), b.data() + 4}};
  for (std::int64_t rank = 0; rank <= 8; ++rank) {
    auto splits = multiway_internal::MultisequenceSelect(inputs, rank);
    EXPECT_EQ(splits[0] + splits[1], rank) << "rank " << rank;
    // Every key below a split must be <= every key above any split.
    int max_below = std::numeric_limits<int>::min();
    int min_above = std::numeric_limits<int>::max();
    for (int i = 0; i < 2; ++i) {
      const auto& in = inputs[static_cast<std::size_t>(i)];
      if (splits[static_cast<std::size_t>(i)] > 0) {
        max_below = std::max(
            max_below, in.begin[splits[static_cast<std::size_t>(i)] - 1]);
      }
      if (splits[static_cast<std::size_t>(i)] < in.size()) {
        min_above = std::min(
            min_above, in.begin[splits[static_cast<std::size_t>(i)]]);
      }
    }
    EXPECT_LE(max_below, min_above) << "rank " << rank;
  }
}

TEST(MultisequenceSelectTest, HeavyDuplicates) {
  std::vector<int> a(100, 5), b(100, 5), c{1, 5, 9};
  std::vector<MergeInput<int>> inputs{{a.data(), a.data() + 100},
                                      {b.data(), b.data() + 100},
                                      {c.data(), c.data() + 3}};
  for (std::int64_t rank : {0, 1, 50, 101, 150, 202, 203}) {
    auto splits = multiway_internal::MultisequenceSelect(inputs, rank);
    EXPECT_EQ(splits[0] + splits[1] + splits[2], rank) << "rank " << rank;
  }
}


// ---------------------------------------------------------------------------
// SampleSort (gnu_parallel / TBB-class library baseline)
// ---------------------------------------------------------------------------

class SampleSortSweep : public ::testing::TestWithParam<int> {};

TEST_P(SampleSortSweep, MatchesStdSort) {
  const std::int64_t n = 1000 * GetParam() * GetParam() + GetParam();
  DataGenOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  opt.distribution =
      GetParam() % 2 ? Distribution::kUniform : Distribution::kZipf;
  auto data = GenerateKeys<std::int64_t>(n, opt);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  std::vector<std::int64_t> aux(data.size());
  ThreadPool pool(4);
  SampleSort(data.data(), aux.data(), n, &pool);
  EXPECT_EQ(data, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SampleSortSweep, ::testing::Range(1, 12));

TEST(SampleSortTest, SmallInputsRunSequentially) {
  std::vector<int> data{3, 1, 2};
  std::vector<int> aux(3);
  ThreadPool pool(4);
  SampleSort(data.data(), aux.data(), 3, &pool);
  EXPECT_EQ(data, (std::vector<int>{1, 2, 3}));
}

TEST(SampleSortTest, NullPoolFallsBackToStableSort) {
  DataGenOptions opt;
  auto data = GenerateKeys<std::int32_t>(20000, opt);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  std::vector<std::int32_t> aux(data.size());
  SampleSort(data.data(), aux.data(), 20000, nullptr);
  EXPECT_EQ(data, expected);
}

TEST(SampleSortTest, StabilityPreserved) {
  // Stable across equal keys: pairs compared by first only.
  struct P {
    int key;
    int tag;
    bool operator<(const P& o) const { return key < o.key; }
    bool operator==(const P& o) const { return key == o.key && tag == o.tag; }
  };
  std::vector<P> data;
  SplitMix64 rng(4);
  for (int i = 0; i < 50000; ++i) {
    data.push_back(P{static_cast<int>(rng.Next() % 50), i});
  }
  auto expected = data;
  std::stable_sort(expected.begin(), expected.end());
  std::vector<P> aux(data.size());
  ThreadPool pool(4);
  SampleSort(data.data(), aux.data(),
             static_cast<std::int64_t>(data.size()), &pool);
  EXPECT_EQ(data, expected);
}

// ---------------------------------------------------------------------------
// Buffer-boundary properties of the cache-conscious substrate: run lengths
// straddling the staging-buffer geometry, empty runs, all-equal keys, and
// single-occupied-digit inputs (the digit-skip path).
// ---------------------------------------------------------------------------

// Merges `lens` runs of std::int32_t (seeded deterministic contents) and
// checks against the sort-everything oracle. Exercises both kernels: k <=
// multiway_internal::kScanMergeMaxK dispatches to the scan merge, larger k
// to the buffered loser tree.
void CheckMergeAgainstOracle(const std::vector<std::int64_t>& lens,
                             std::uint64_t seed) {
  std::vector<std::vector<std::int32_t>> lists;
  std::vector<std::int32_t> oracle;
  for (std::size_t i = 0; i < lens.size(); ++i) {
    DataGenOptions opt;
    opt.seed = seed + i;
    auto run = GenerateKeys<std::int32_t>(lens[i], opt);
    std::sort(run.begin(), run.end());
    oracle.insert(oracle.end(), run.begin(), run.end());
    lists.push_back(std::move(run));
  }
  std::sort(oracle.begin(), oracle.end());
  std::vector<std::int32_t> out;
  MultiwayMerge(lists, &out);
  EXPECT_EQ(out, oracle);
}

TEST(MergeBoundaryTest, RunLengthsAroundStagingBufferSize) {
  // The tree path (k > kScanMergeMaxK) stages each run through a buffer of
  // this many entries; lengths of B-1 / B / B+1 hit the refill edges.
  const std::int64_t b =
      multiway_internal::MergeRunBufferEntries<std::int32_t>();
  for (std::int64_t len : {b - 1, b, b + 1, 2 * b, 2 * b + 1}) {
    CheckMergeAgainstOracle(
        std::vector<std::int64_t>(multiway_internal::kScanMergeMaxK + 2, len),
        static_cast<std::uint64_t>(len));
  }
}

TEST(MergeBoundaryTest, EqualLengthRunsDrainTogetherOnScanPath) {
  // All runs hit their last element in the same guarded batch.
  for (int k : {3, 4, 7, 16}) {
    CheckMergeAgainstOracle(std::vector<std::int64_t>(k, 1000), 7);
  }
}

TEST(MergeBoundaryTest, EmptyRunsInterleaved) {
  for (int k : {5, 20}) {
    std::vector<std::int64_t> lens;
    for (int i = 0; i < k; ++i) lens.push_back(i % 2 == 0 ? 0 : 700 + i);
    CheckMergeAgainstOracle(lens, 13);
  }
  // All runs empty.
  CheckMergeAgainstOracle({0, 0, 0, 0}, 17);
  // Exactly one non-empty.
  CheckMergeAgainstOracle({0, 0, 512, 0}, 19);
}

TEST(MergeBoundaryTest, SkewedSingletonAgainstLongRuns) {
  // A length-1 run forces the smallest possible guarded batches.
  CheckMergeAgainstOracle({1, 100000, 1, 100000, 1}, 23);
  CheckMergeAgainstOracle({100000, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
                           1, 1, 1, 1, 1},
                          29);
}

TEST(MergeBoundaryTest, AllEqualKeysStayStableAcrossInputs) {
  struct Tagged {
    std::int32_t key;
    int src;
    bool operator<(const Tagged& o) const { return key < o.key; }
  };
  for (int k : {4, 20}) {  // scan path and tree path
    std::vector<std::vector<Tagged>> lists(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      lists[static_cast<std::size_t>(i)].assign(
          1500, Tagged{42, i});
    }
    std::vector<MergeInput<Tagged>> inputs;
    for (const auto& l : lists) {
      inputs.push_back(MergeInput<Tagged>{l.data(), l.data() + l.size()});
    }
    std::vector<Tagged> out(static_cast<std::size_t>(k) * 1500);
    MultiwayMerge(inputs, out.data());
    // Stability: equal keys must appear in input order, each input's block
    // contiguous and in ascending source index.
    for (std::size_t i = 1; i < out.size(); ++i) {
      EXPECT_LE(out[i - 1].src, out[i].src) << "at " << i << " (k=" << k
                                            << ")";
    }
  }
}

TEST(ParadisBoundaryTest, LargeInputUsesWriteCombiningPermute) {
  // Above paradis_internal::kBufferedPlaceMinN the serial path runs the
  // write-combining permutation before the cycle-place mop-up.
  const std::int64_t n = paradis_internal::kBufferedPlaceMinN + 4097;
  DataGenOptions opt;
  opt.seed = 31;
  auto data = GenerateKeys<std::int32_t>(n, opt);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  ParadisSort(data.data(), n);
  EXPECT_EQ(data, expected);
}

TEST(ParadisBoundaryTest, SingleOccupiedDigitLevelsAreSkipped) {
  // Keys spanning one low byte leave every higher radix level with a single
  // occupied bucket: the level must recurse without a permutation pass and
  // still sort (also covers the all-equal input).
  const std::int64_t n = paradis_internal::kBufferedPlaceMinN * 2;
  std::mt19937 rng(37);
  std::vector<std::int32_t> data(static_cast<std::size_t>(n));
  for (auto& v : data) v = static_cast<std::int32_t>(rng() % 256);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  ParadisSort(data.data(), n);
  EXPECT_EQ(data, expected);

  std::vector<std::int32_t> equal(static_cast<std::size_t>(n), -7);
  ParadisSort(equal.data(), n);
  EXPECT_TRUE(std::all_of(equal.begin(), equal.end(),
                          [](std::int32_t v) { return v == -7; }));
}

TEST(ParadisBoundaryTest, ParallelBufferedStripes) {
  ThreadPool pool(4);
  const std::int64_t n = paradis_internal::kBufferedPlaceMinN * 8;
  DataGenOptions opt;
  opt.seed = 41;
  auto data = GenerateKeys<std::int32_t>(n, opt);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  ParadisSort(data.data(), n, &pool);
  EXPECT_EQ(data, expected);
}

TEST(LsbRadixBoundaryTest, SingleOccupiedDigitPassesAreSkipped) {
  // Low-byte-only keys skip three of four passes (identity permutations);
  // the ping-pong parity bookkeeping must still return the result in data.
  const std::int64_t n = 1 << 15;  // above the buffered-scatter threshold
  std::mt19937 rng(43);
  std::vector<std::int32_t> data(static_cast<std::size_t>(n));
  for (auto& v : data) v = static_cast<std::int32_t>(rng() % 256);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  std::vector<std::int32_t> aux(static_cast<std::size_t>(n));
  LsbRadixSort(data.data(), aux.data(), n);
  EXPECT_EQ(data, expected);

  // All-equal: every pass skips.
  std::vector<std::int32_t> equal(static_cast<std::size_t>(n), 99);
  LsbRadixSort(equal.data(), aux.data(), n);
  EXPECT_TRUE(std::all_of(equal.begin(), equal.end(),
                          [](std::int32_t v) { return v == 99; }));
}

TEST(LsbRadixBoundaryTest, BufferedScatterAtThresholdEdges) {
  for (std::int64_t n : {lsb_internal::kBufferedScatterMinN - 1,
                         lsb_internal::kBufferedScatterMinN,
                         lsb_internal::kBufferedScatterMinN + 1}) {
    DataGenOptions opt;
    opt.seed = static_cast<std::uint64_t>(n);
    auto data = GenerateKeys<std::int32_t>(n, opt);
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    std::vector<std::int32_t> aux(static_cast<std::size_t>(n));
    LsbRadixSort(data.data(), aux.data(), n);
    EXPECT_EQ(data, expected) << "n=" << n;
  }
}

}  // namespace
}  // namespace mgs::cpusort
