// Multi-column record sorting: the composed (a, b) normalized key plus the
// c tie-break must order records exactly like a reference ORDER BY a, b, c —
// randomized A/B against std::stable_sort with an explicit three-column
// comparator, through both the CPU radix paths (prefix-only traits + tie
// fix-up) and the multi-GPU sorters.

#include "core/record.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/gpu_set.h"
#include "core/keygen.h"
#include "core/p2p_sort.h"
#include "cpusort/lsb_radix_sort.h"
#include "cpusort/paradis_sort.h"
#include "topo/systems.h"
#include "util/datagen.h"

namespace mgs::core {
namespace {

using cpusort::LsbRadixSort;
using cpusort::ParadisSort;

/// Reference ORDER BY (a, b, c): the order SortRecord's composed key +
/// tie-break must reproduce. rowid is payload and deliberately not compared.
bool ThreeColumnLess(const SortRecord& x, const SortRecord& y) {
  if (x.a() != y.a()) return x.a() < y.a();
  if (x.b() != y.b()) return x.b() < y.b();
  return x.c < y.c;
}

std::vector<SortRecord> RandomRecords(int n, std::uint64_t seed) {
  // Tiny column domains so every tie shape — equal a, equal (a, b), fully
  // equal keys with distinct payloads — occurs often.
  SplitMix64 rng(seed);
  std::vector<SortRecord> records;
  records.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto a = static_cast<std::int32_t>(rng.Next() % 16) - 8;
    const auto b = static_cast<std::int32_t>(rng.Next() % 8) - 4;
    const auto c = static_cast<std::int64_t>(rng.Next() % 4);
    records.push_back(
        SortRecord::Make(a, b, c, static_cast<std::uint64_t>(i)));
  }
  return records;
}

TEST(SortRecordOrder, ComposedKeyMatchesThreeColumnComparator) {
  auto records = RandomRecords(3000, 5);
  for (std::size_t i = 0; i < records.size(); i += 7) {
    for (std::size_t j = 0; j < records.size(); j += 11) {
      EXPECT_EQ(records[i] < records[j],
                ThreeColumnLess(records[i], records[j]))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(SortRecordOrder, RoundTripsColumns) {
  SplitMix64 rng(17);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::int32_t>(rng.Next());
    const auto b = static_cast<std::int32_t>(rng.Next());
    const SortRecord r = SortRecord::Make(a, b, 0, 0);
    EXPECT_EQ(r.a(), a);
    EXPECT_EQ(r.b(), b);
  }
}

/// A/B harness: sort with `sorter`, compare against std::stable_sort with
/// the three-column comparator. Key order must match exactly; payloads may
/// permute within fully-equal-key runs (the sorters are not stable), so
/// equal runs are compared as rowid multisets.
template <typename Sorter>
void ExpectAbEquivalent(std::vector<SortRecord> records, Sorter&& sorter) {
  auto expected = records;
  std::stable_sort(expected.begin(), expected.end(), ThreeColumnLess);
  sorter(records);
  ASSERT_EQ(records.size(), expected.size());
  std::size_t i = 0;
  while (i < records.size()) {
    ASSERT_EQ(records[i].norm, expected[i].norm) << "at " << i;
    ASSERT_EQ(records[i].c, expected[i].c) << "at " << i;
    std::size_t j = i + 1;
    while (j < records.size() && records[j].norm == records[i].norm &&
           records[j].c == records[i].c) {
      ++j;
    }
    std::vector<std::uint64_t> got, want;
    for (std::size_t k = i; k < j; ++k) {
      got.push_back(records[k].rowid);
      want.push_back(expected[k].rowid);
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "payload multiset diverges in run at " << i;
    i = j;
  }
}

TEST(SortRecordAb, LsbRadixVsStableSort) {
  ExpectAbEquivalent(RandomRecords(20000, 21), [](auto& records) {
    std::vector<SortRecord> aux(records.size());
    LsbRadixSort(records.data(), aux.data(),
                 static_cast<std::int64_t>(records.size()));
  });
}

TEST(SortRecordAb, ParadisVsStableSort) {
  ExpectAbEquivalent(RandomRecords(30000, 22), [](auto& records) {
    ParadisSort(records.data(), static_cast<std::int64_t>(records.size()));
  });
}

TEST(SortRecordAb, StdSortVsStableSort) {
  ExpectAbEquivalent(RandomRecords(10000, 23), [](auto& records) {
    std::sort(records.begin(), records.end());
  });
}

TEST(SortRecordAb, GeneratedRecordsP2pVsStableSort) {
  auto platform =
      CheckOk(vgpu::Platform::Create(CheckOk(topo::MakeSystem("dgx-a100"))));
  DataGenOptions gen;
  gen.seed = 31;
  auto records = GenerateRecords(200000, gen);
  auto expected = records;
  std::stable_sort(expected.begin(), expected.end(), ThreeColumnLess);
  vgpu::HostBuffer<SortRecord> data(std::move(records));
  SortOptions options;
  options.gpu_set = CheckOk(ChooseGpuSet(platform->topology(), 4, true));
  auto stats = P2pSort(platform.get(), &data, options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  const auto& sorted = data.vector();
  ASSERT_EQ(sorted.size(), expected.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i].norm, expected[i].norm) << "at " << i;
    EXPECT_EQ(sorted[i].c, expected[i].c) << "at " << i;
  }
}

}  // namespace
}  // namespace mgs::core
