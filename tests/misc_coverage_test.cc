// Odds-and-ends coverage: CSV emission via the env knob, trigger re-fire,
// merge-sort stability, zipf skew knob, and device-buffer move semantics.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "cpusort/cpusort.h"
#include "sim/task.h"
#include "topo/systems.h"
#include "util/datagen.h"
#include "util/report.h"
#include "vgpu/platform.h"

namespace mgs {
namespace {

TEST(ReportEmitTest, WritesCsvWhenEnvSet) {
  const auto dir = std::filesystem::temp_directory_path() / "mgs_emit_test";
  std::filesystem::create_directories(dir);
  setenv("MGS_BENCH_CSV_DIR", dir.c_str(), 1);
  ReportTable t("Emit Env Test", {"a", "b"});
  t.AddRow({"1", "2"});
  t.Emit();
  unsetenv("MGS_BENCH_CSV_DIR");
  std::ifstream f(dir / "emit_env_test.csv");
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::filesystem::remove_all(dir);
}

TEST(TriggerTest, RefireIsNoOp) {
  sim::Trigger trigger;
  int resumed = 0;
  auto waiter = [&]() -> sim::Task<void> {
    co_await trigger.Wait();
    ++resumed;
  };
  auto j = sim::Spawn(waiter());
  trigger.Fire();
  trigger.Fire();  // must not double-resume
  EXPECT_EQ(resumed, 1);
  EXPECT_TRUE(j->done());
}

TEST(MergeSortTest, IsStable) {
  struct P {
    int key;
    int tag;
    bool operator<(const P& o) const { return key < o.key; }
    bool operator==(const P& o) const {
      return key == o.key && tag == o.tag;
    }
  };
  std::vector<P> data;
  SplitMix64 rng(11);
  for (int i = 0; i < 20000; ++i) {
    data.push_back(P{static_cast<int>(rng.Next() % 20), i});
  }
  auto expected = data;
  std::stable_sort(expected.begin(), expected.end());
  std::vector<P> aux(data.size());
  cpusort::MergeSort(data.data(), aux.data(),
                     static_cast<std::int64_t>(data.size()));
  EXPECT_EQ(data, expected);
}

TEST(DataGenTest, ZipfThetaControlsSkew) {
  DataGenOptions mild;
  mild.distribution = Distribution::kZipf;
  mild.zipf_theta = 0.5;
  DataGenOptions heavy = mild;
  heavy.zipf_theta = 0.99;
  auto count_most_common = [](std::vector<std::int32_t> v) {
    std::sort(v.begin(), v.end());
    std::int64_t best = 0, run = 1;
    for (std::size_t i = 1; i < v.size(); ++i) {
      run = v[i] == v[i - 1] ? run + 1 : 1;
      best = std::max(best, run);
    }
    return best;
  };
  const auto mild_peak =
      count_most_common(GenerateKeys<std::int32_t>(50'000, mild));
  const auto heavy_peak =
      count_most_common(GenerateKeys<std::int32_t>(50'000, heavy));
  EXPECT_GT(heavy_peak, mild_peak * 2)
      << "higher theta must concentrate mass on the head";
}

TEST(DeviceBufferTest, MoveTransfersOwnership) {
  auto p = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  auto& dev = p->device(0);
  const double before = dev.memory_free();
  auto a = CheckOk(dev.Allocate<std::int32_t>(1000));
  auto b = std::move(a);
  EXPECT_EQ(b.size(), 1000);
  EXPECT_EQ(b.device_id(), 0);
  EXPECT_DOUBLE_EQ(dev.memory_free(), before - 4000)
      << "moving must not double-free or leak the accounting";
  {
    vgpu::DeviceBuffer<std::int32_t> c;
    c = std::move(b);
    EXPECT_EQ(c.size(), 1000);
  }
  EXPECT_DOUBLE_EQ(dev.memory_free(), before);
}

TEST(StreamOpsCountTest, CountsEnqueues) {
  auto p = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  auto& s = p->device(0).stream(0);
  EXPECT_EQ(s.ops_enqueued(), 0);
  s.LaunchAsync(0.0, [] {});
  s.RecordEvent();
  EXPECT_EQ(s.ops_enqueued(), 2);
}

}  // namespace
}  // namespace mgs
