#include "sim/task.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

#if defined(__SANITIZE_ADDRESS__)
#define MGS_TEST_HAS_LSAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MGS_TEST_HAS_LSAN 1
#endif
#endif
#ifdef MGS_TEST_HAS_LSAN
#include <sanitizer/lsan_interface.h>
#endif

namespace mgs::sim {
namespace {

TEST(TaskTest, SimpleTaskRunsToCompletion) {
  Simulator sim;
  bool ran = false;
  auto body = [&]() -> Task<void> {
    ran = true;
    co_return;
  };
  CheckOk(RunToCompletion(&sim, body()));
  EXPECT_TRUE(ran);
}

TEST(TaskTest, TaskIsLazyUntilSpawned) {
  bool ran = false;
  auto body = [&]() -> Task<void> {
    ran = true;
    co_return;
  };
  {
    Task<void> t = body();
    EXPECT_FALSE(ran) << "lazy task must not start on construction";
  }
  EXPECT_FALSE(ran) << "destroying an unstarted task must not run it";
}

TEST(TaskTest, DelaySuspendsForSimulatedTime) {
  Simulator sim;
  double resumed_at = -1;
  auto body = [&]() -> Task<void> {
    co_await Delay{sim, 3.5};
    resumed_at = sim.Now();
  };
  CheckOk(RunToCompletion(&sim, body()));
  EXPECT_DOUBLE_EQ(resumed_at, 3.5);
}

TEST(TaskTest, NestedAwaitsAccumulateTime) {
  Simulator sim;
  auto inner = [&](double d) -> Task<void> { co_await Delay{sim, d}; };
  auto outer = [&]() -> Task<void> {
    co_await inner(1.0);
    co_await inner(2.0);
  };
  CheckOk(RunToCompletion(&sim, outer()));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(TaskTest, ValueTaskReturnsValue) {
  Simulator sim;
  int got = 0;
  auto produce = [&]() -> Task<int> {
    co_await Delay{sim, 1.0};
    co_return 42;
  };
  auto consume = [&]() -> Task<void> {
    got = co_await produce();
  };
  CheckOk(RunToCompletion(&sim, consume()));
  EXPECT_EQ(got, 42);
}

TEST(TaskTest, SpawnRunsEagerlyUntilFirstSuspension) {
  Simulator sim;
  int stage = 0;
  auto body = [&]() -> Task<void> {
    stage = 1;
    co_await Delay{sim, 1.0};
    stage = 2;
  };
  auto joiner = Spawn(body());
  EXPECT_EQ(stage, 1) << "spawn must run to the first suspension point";
  EXPECT_FALSE(joiner->done());
  sim.Run();
  EXPECT_EQ(stage, 2);
  EXPECT_TRUE(joiner->done());
}

TEST(TaskTest, WhenAllWaitsForAllTasks) {
  Simulator sim;
  auto sleeper = [&](double d) -> Task<void> { co_await Delay{sim, d}; };
  std::vector<Task<void>> tasks;
  tasks.push_back(sleeper(1.0));
  tasks.push_back(sleeper(5.0));
  tasks.push_back(sleeper(3.0));
  CheckOk(RunToCompletion(&sim, WhenAll(std::move(tasks))));
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0) << "tasks must run concurrently";
}

TEST(TaskTest, WhenAllOfJoiners) {
  Simulator sim;
  auto sleeper = [&](double d) -> Task<void> { co_await Delay{sim, d}; };
  std::vector<JoinerPtr> joiners;
  joiners.push_back(Spawn(sleeper(2.0)));
  joiners.push_back(Spawn(sleeper(4.0)));
  CheckOk(RunToCompletion(&sim, WhenAll(std::move(joiners))));
  EXPECT_DOUBLE_EQ(sim.Now(), 4.0);
}

TEST(TaskTest, TriggerReleasesWaiters) {
  Simulator sim;
  Trigger trigger;
  int released = 0;
  auto waiter = [&]() -> Task<void> {
    co_await trigger.Wait();
    ++released;
  };
  auto j1 = Spawn(waiter());
  auto j2 = Spawn(waiter());
  EXPECT_EQ(released, 0);
  trigger.Fire();
  EXPECT_EQ(released, 2);
  EXPECT_TRUE(j1->done());
  EXPECT_TRUE(j2->done());
}

TEST(TaskTest, AwaitOnFiredTriggerCompletesImmediately) {
  Simulator sim;
  Trigger trigger;
  trigger.Fire();
  bool done = false;
  auto body = [&]() -> Task<void> {
    co_await trigger.Wait();
    done = true;
  };
  Spawn(body());
  EXPECT_TRUE(done);
}

TEST(TaskTest, DeadlockIsReported) {
  Simulator sim;
  Trigger never;
  auto body = [&]() -> Task<void> { co_await never.Wait(); };
  // The deadlocked coroutine frame is deliberately never resumed, so its
  // allocation is unreachable at exit; keep LeakSanitizer out of it.
#ifdef MGS_TEST_HAS_LSAN
  __lsan_disable();
#endif
  Status st = RunToCompletion(&sim, body());
#ifdef MGS_TEST_HAS_LSAN
  __lsan_enable();
#endif
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(TaskTest, JoinerAwaitableDirectly) {
  Simulator sim;
  auto sleeper = [&]() -> Task<void> { co_await Delay{sim, 1.0}; };
  auto joiner = Spawn(sleeper());
  double joined_at = -1;
  auto body = [&]() -> Task<void> {
    co_await *joiner;
    joined_at = sim.Now();
  };
  CheckOk(RunToCompletion(&sim, body()));
  EXPECT_DOUBLE_EQ(joined_at, 1.0);
}

TEST(TaskTest, ManyConcurrentSpawns) {
  Simulator sim;
  int completed = 0;
  auto sleeper = [&](double d) -> Task<void> {
    co_await Delay{sim, d};
    ++completed;
  };
  std::vector<JoinerPtr> joiners;
  for (int i = 0; i < 100; ++i) {
    joiners.push_back(Spawn(sleeper(0.01 * (i % 10 + 1))));
  }
  CheckOk(RunToCompletion(&sim, WhenAll(std::move(joiners))));
  EXPECT_EQ(completed, 100);
}

}  // namespace
}  // namespace mgs::sim
