// Custom platform: model a hypothetical next-generation server with the
// same topology-building API the presets use, then compare P2P and HET
// sorting on it. This is the "what if the interconnects were different?"
// workflow the simulator enables (Section 7 discusses exactly such
// directions: faster CPU-GPU links make multi-GPU sorting scale).

#include <cstdio>

#include "core/api.h"
#include "topo/topology.h"
#include "util/datagen.h"
#include "util/units.h"
#include "vgpu/platform.h"

using namespace mgs;

namespace {

// A 4-GPU machine with PCIe 5.0-class CPU-GPU links (one switch per GPU)
// and an NVSwitch-class all-to-all P2P fabric.
std::unique_ptr<topo::Topology> MakeHypothetical(double cpu_gpu_gbs) {
  auto topo_ptr = std::make_unique<topo::Topology>("hypothetical-4gpu");
  auto& topology = *topo_ptr;

  topo::CpuSpec cpu;
  cpu.model = "2x future CPU";
  cpu.sockets = 2;
  cpu.cores = 128;
  cpu.paradis_rate_32 = 2.0e9;
  cpu.multiway_merge_bw = 50 * kGB;
  topology.SetCpuSpec(cpu);

  const int cpu0 = topology.AddCpuSocket();
  const int cpu1 = topology.AddCpuSocket();
  CheckOk(topology.AttachHostMemory(cpu0, 200 * kGB, 170 * kGB, 250 * kGB,
                                    1.1));
  CheckOk(topology.AttachHostMemory(cpu1, 200 * kGB, 170 * kGB, 250 * kGB,
                                    1.1));

  topo::GpuSpec gpu;
  gpu.model = "future-GPU 80GB";
  gpu.memory_capacity_bytes = 80 * kGB;
  gpu.memory_bandwidth = 2000 * kGB;
  gpu.sort_rate_32 = 40e9;
  gpu.sort_rate_64 = 19e9;
  gpu.merge_rate_32 = 160e9;
  for (int g = 0; g < 4; ++g) topology.AddGpu(gpu, g < 2 ? 0 : 1);

  for (int g = 0; g < 4; ++g) {
    topo::LinkSpec pcie;
    pcie.name = "pcie5";
    pcie.kind = topo::LinkKind::kPcie4;  // family label only
    pcie.cap_ab = cpu_gpu_gbs * kGB;
    pcie.duplex_cap = 1.6 * cpu_gpu_gbs * kGB;
    CheckOk(topology.Connect(topology.CpuNode(g < 2 ? cpu0 : cpu1),
                             topology.GpuNode(g), pcie));
  }

  const auto nvswitch = topology.AddSwitch("nvswitch");
  for (int g = 0; g < 4; ++g) {
    topo::LinkSpec nvlink;
    nvlink.name = "nvl-next";
    nvlink.kind = topo::LinkKind::kNvlink3;
    nvlink.cap_ab = 400 * kGB;
    nvlink.duplex_cap = 760 * kGB;
    CheckOk(topology.Connect(topology.GpuNode(g), nvswitch, nvlink));
  }

  topo::LinkSpec xlink;
  xlink.name = "cpu-link";
  xlink.kind = topo::LinkKind::kInfinityFabric;
  xlink.cap_ab = 150 * kGB;
  xlink.duplex_cap = 250 * kGB;
  CheckOk(topology.Connect(topology.CpuNode(cpu0), topology.CpuNode(cpu1),
                           xlink));
  return topo_ptr;
}

double RunP2p(double cpu_gpu_gbs) {
  vgpu::PlatformOptions options;
  options.scale = 2000.0;
  auto platform = CheckOk(
      vgpu::Platform::Create(MakeHypothetical(cpu_gpu_gbs), options));
  DataGenOptions gen;
  auto keys = GenerateKeys<std::int32_t>(1'000'000, gen);  // 2e9 logical
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  core::SortOptions sort_options;
  sort_options.gpu_set =
      CheckOk(core::ChooseGpuSet(platform->topology(), 4, true));
  auto stats = CheckOk(core::P2pSort(platform.get(), &data, sort_options));
  return stats.total_seconds;
}

}  // namespace

int main() {
  std::printf(
      "P2P sort of 2e9 keys on a hypothetical 4-GPU platform as the\n"
      "CPU-GPU link speed grows (Section 7: transfers are the bottleneck):\n\n");
  std::printf("%-22s %-12s\n", "CPU-GPU link [GB/s]", "P2P sort [s]");
  for (double gbs : {25.0, 50.0, 100.0, 200.0}) {
    std::printf("%-22.0f %-12.3f\n", gbs, RunP2p(gbs));
  }
  std::printf(
      "\nDoubling the CPU-GPU bandwidth keeps cutting the end-to-end time:\n"
      "exactly the scaling limiter the paper identifies on real hardware.\n");
  return 0;
}
