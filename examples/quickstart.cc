// Quickstart: sort 2e9 integers on a simulated DGX A100 with both
// multi-GPU algorithms and print the phase breakdowns.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/api.h"
#include "topo/systems.h"
#include "util/datagen.h"
#include "util/units.h"
#include "vgpu/platform.h"

using namespace mgs;

namespace {

void PrintStats(const core::SortStats& stats) {
  std::printf("%-18s %d GPUs  total %-10s (HtoD %s | sort %s | merge %s | "
              "DtoH %s)\n",
              stats.algorithm.c_str(), stats.num_gpus,
              FormatDuration(stats.total_seconds).c_str(),
              FormatDuration(stats.phases.htod).c_str(),
              FormatDuration(stats.phases.sort).c_str(),
              FormatDuration(stats.phases.merge).c_str(),
              FormatDuration(stats.phases.dtoh).c_str());
}

}  // namespace

int main() {
  // A platform is a calibrated topology + discrete-event simulator. The
  // scale factor keeps the functional arrays small (2e9 logical keys are
  // represented by 2e6 real ones) while timings bill full-size transfers.
  vgpu::PlatformOptions options;
  options.scale = 1000.0;
  auto platform =
      CheckOk(vgpu::Platform::Create(topo::MakeDgxA100(), options));
  std::printf("%s\n", platform->topology().Describe().c_str());

  const std::int64_t actual_keys = 2'000'000;  // 2e9 logical
  DataGenOptions gen;
  auto keys = GenerateKeys<std::int32_t>(actual_keys, gen);

  // --- P2P sort on the best four GPUs --------------------------------
  {
    vgpu::HostBuffer<std::int32_t> data(keys);
    core::SortOptions sort_options;
    sort_options.gpu_set = CheckOk(core::ChooseGpuSet(
        platform->topology(), 4, /*for_p2p_merge=*/true));
    auto stats = CheckOk(core::P2pSort(platform.get(), &data, sort_options));
    PrintStats(stats);
    std::printf("  P2P traffic: %s, %d merge stages, output sorted: %s\n",
                FormatBytes(stats.p2p_bytes).c_str(), stats.merge_stages,
                std::is_sorted(data.vector().begin(), data.vector().end())
                    ? "yes"
                    : "NO");
  }

  // --- HET sort on the same GPUs --------------------------------------
  {
    // Each P2pSort/HetSort call needs a platform whose clock and devices
    // are fresh; create a new one for an apples-to-apples run.
    auto platform2 =
        CheckOk(vgpu::Platform::Create(topo::MakeDgxA100(), options));
    vgpu::HostBuffer<std::int32_t> data(keys);
    core::HetOptions het_options;
    het_options.gpu_set = CheckOk(core::ChooseGpuSet(
        platform2->topology(), 4, /*for_p2p_merge=*/false));
    auto stats = CheckOk(core::HetSort(platform2.get(), &data, het_options));
    PrintStats(stats);
    std::printf("  final CPU merge fan-in: %d sublists\n",
                stats.final_merge_sublists);
  }

  // --- CPU-only baseline ----------------------------------------------
  {
    auto platform3 =
        CheckOk(vgpu::Platform::Create(topo::MakeDgxA100(), options));
    vgpu::HostBuffer<std::int32_t> data(keys);
    auto stats = CheckOk(core::CpuSortBaseline(platform3.get(), &data));
    PrintStats(stats);
  }
  return 0;
}
