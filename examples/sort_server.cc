// sort_server — run the multi-tenant sorting service on a simulated
// machine and print its latency/throughput report.
//
//   sort_server --system=dgx-a100 --jobs=32 --rate=2.0 --policy=sjf
//               [--seed=42] [--slo=5.0] [--trace=service.json]
//
// An open-loop Poisson job stream (mixed sizes and GPU counts) plus a
// small closed-loop client population share the machine; jobs pass
// admission control, wait in a policy-ordered queue, get placed by the
// topology-aware placer, and execute concurrently — contending for PCIe
// switches and NVLink in the flow network. With --trace, every job's
// queue/run spans and sampled per-link utilization land in one Chrome
// trace (open in ui.perfetto.dev).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "fault/injector.h"
#include "fault/scenario.h"
#include "net/cluster.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "sched/server.h"
#include "sim/trace.h"
#include "topo/systems.h"
#include "util/report.h"
#include "util/units.h"

using namespace mgs;
using namespace mgs::sched;

namespace {

struct Args {
  std::string system = "dgx-a100";
  int nodes = 1;        // > 1: multi-node cluster (src/net)
  int rack_size = 2;    // nodes per rack
  double oversub = 1.0; // cross-rack oversubscription factor
  int jobs = 32;
  double rate = 2.0;  // Poisson arrivals per second
  std::string policy = "sjf";
  std::string exec = "phase";
  KeyKind keys = KeyKind::kNumeric;
  bool spill = false;  // attach an NVMe and admit out-of-core jobs
  std::uint64_t seed = 42;
  double slo = 5.0;
  std::string trace_path;
  std::string metrics_path;
  std::string fault_plan;  // inline scenario, @file, or file path
};

void Usage() {
  std::printf(
      "usage: sort_server [--system=ac922|delta-d22x|dgx-a100]\n"
      "                   [--nodes=N] [--rack-size=N] [--oversub=F]\n"
      "                   [--jobs=N] [--rate=JOBS_PER_SEC]\n"
      "                   [--policy=fifo|sjf|priority] [--seed=N]\n"
      "                   [--exec=phase|graph]\n"
      "                   [--keys=numeric|string|record] [--spill]\n"
      "                   [--slo=SECONDS] [--trace=out.json]\n"
      "                   [--metrics-out=metrics.prom|.json|.csv]\n"
      "                   [--fault-plan='at=0.5 gpu=1 fail; ...'|@plan.json]\n"
      "\n"
      "--fault-plan injects faults (GPU loss, link degradation/outage,\n"
      "transient copy errors; see docs/fault_tolerance.md) and enables the\n"
      "server's recovery policy: retries with backoff, health monitoring,\n"
      "and HET fallback on degraded meshes.\n"
      "\n"
      "--nodes > 1 runs the service on a multi-node cluster (--nodes node\n"
      "systems of --system joined by a leaf/spine RDMA fabric; src/net);\n"
      "every fourth open-loop job then spans two whole nodes via the\n"
      "distributed sorter, shuffling across NICs and switches.\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

Result<Args> Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--system", &value)) {
      args.system = value;
    } else if (ParseFlag(argv[i], "--nodes", &value)) {
      args.nodes = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--rack-size", &value)) {
      args.rack_size = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--oversub", &value)) {
      args.oversub = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--jobs", &value)) {
      args.jobs = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--rate", &value)) {
      args.rate = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--policy", &value)) {
      args.policy = value;
    } else if (ParseFlag(argv[i], "--exec", &value)) {
      if (value != "phase" && value != "graph") {
        return Status::Invalid("unknown exec mode: " + value);
      }
      args.exec = value;
    } else if (ParseFlag(argv[i], "--keys", &value)) {
      auto kind = KeyKindFromString(value);
      if (!kind.ok()) return kind.status();
      args.keys = *kind;
    } else if (std::strcmp(argv[i], "--spill") == 0) {
      args.spill = true;
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      args.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--slo", &value)) {
      args.slo = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--trace", &value)) {
      args.trace_path = value;
    } else if (ParseFlag(argv[i], "--metrics-out", &value)) {
      args.metrics_path = value;
    } else if (ParseFlag(argv[i], "--fault-plan", &value)) {
      args.fault_plan = value;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      std::exit(0);
    } else {
      return Status::Invalid(std::string("unknown flag: ") + argv[i]);
    }
  }
  if (args.jobs < 0 || args.rate <= 0) {
    return Status::Invalid("--jobs must be >= 0 and --rate > 0");
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  auto args_or = Parse(argc, argv);
  if (!args_or.ok()) {
    std::fprintf(stderr, "%s\n", args_or.status().ToString().c_str());
    Usage();
    return 1;
  }
  const Args& args = *args_or;

  // Paper-scale logical keys over a small functional array (scale model).
  vgpu::PlatformOptions popts;
  popts.scale = 2e6;
  std::unique_ptr<topo::Topology> topology;
  net::ClusterInfo cluster_info;
  if (args.nodes > 1) {
    net::ClusterOptions copt;
    copt.node_system = args.system;
    copt.nodes = args.nodes;
    copt.nodes_per_rack = args.rack_size;
    copt.oversubscription = args.oversub;
    auto cluster = net::BuildCluster(copt);
    if (!cluster.ok()) {
      std::fprintf(stderr, "%s\n", cluster.status().ToString().c_str());
      return 1;
    }
    topology = std::move(cluster->topology);
    cluster_info = cluster->info;
  } else {
    auto single = topo::MakeSystem(args.system);
    if (!single.ok()) {
      std::fprintf(stderr, "%s\n", single.status().ToString().c_str());
      return 1;
    }
    topology = std::move(*single);
  }
  if (args.spill) {
    // NVMe-class drive on socket 0 (7 GB/s read, 5 GB/s write): the spill
    // tier for jobs whose working set exceeds a device's memory. Attached
    // pre-compile so `nvme0` is a real link — fault plans can down it.
    CheckOk(topology->AttachNvme(0, 7.0 * kGB, 5.0 * kGB));
  }
  auto platform =
      CheckOk(vgpu::Platform::Create(std::move(topology), popts));

  sim::TraceRecorder trace;
  if (!args.trace_path.empty()) platform->SetTrace(&trace);
  obs::MetricsRegistry registry;
  if (!args.metrics_path.empty()) platform->SetMetrics(&registry);

  ServerOptions options;
  auto policy = QueuePolicyFromString(args.policy);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }
  options.policy = *policy;
  options.exec_mode = args.exec == "graph" ? core::ExecMode::kGraph
                                           : core::ExecMode::kPhased;
  options.slo_seconds = args.slo;
  options.spill.enabled = args.spill;
  if (args.nodes > 1) options.cluster = &cluster_info;
  if (!args.trace_path.empty() || !args.metrics_path.empty()) {
    options.utilization_sample_seconds = 0.05;
  }

  std::unique_ptr<fault::FaultInjector> injector;
  if (!args.fault_plan.empty()) {
    auto scenario = fault::FaultScenario::Load(args.fault_plan);
    if (!scenario.ok()) {
      std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
      return 1;
    }
    injector = std::make_unique<fault::FaultInjector>(
        platform.get(), std::move(*scenario), args.seed);
    // Faults are live: retry transient failures with backoff, monitor for
    // unsatisfiable jobs, and reroute to HET when a mesh degrades badly.
    options.recovery.max_retries = 3;
    options.recovery.jitter_seed = args.seed;
    options.recovery.health_check_seconds = 0.05;
    options.recovery.het_fallback_below = 0.5;
  }

  SortServer server(platform.get(), options);

  if (injector != nullptr) {
    if (Status armed = injector->Arm(); !armed.ok()) {
      std::fprintf(stderr, "%s\n", armed.ToString().c_str());
      return 1;
    }
  }

  JobMix mix;
  mix.key_kind = args.keys;
  if (platform->num_devices() < 4) mix.gpu_choices = {1, 2};
  auto jobs = MakePoissonWorkload(mix, args.rate, args.jobs, args.seed);
  if (args.nodes > 1 && args.keys == KeyKind::kNumeric) {
    // Every fourth open-loop job spans two whole nodes via the distributed
    // sorter, so NICs and leaf/spine switches carry real shuffle traffic.
    // (String/record jobs are single-node; the server would clamp anyway.)
    for (std::size_t j = 0; j < jobs.size(); j += 4) {
      jobs[j].nodes = 2;
      jobs[j].gpus = 1;  // derived (nodes x gpus-per-node) by the server
    }
  }
  if (args.spill) {
    // Every eighth open-loop job becomes an oversized single-GPU sort whose
    // working set (2n device buffers) exceeds one GPU's memory — the jobs
    // the NVMe spill tier exists for.
    for (std::size_t j = 0; j < jobs.size(); j += 8) {
      jobs[j].logical_keys = 8e9;  // 2x32 GB of int32 vs a 40 GB device
      jobs[j].gpus = 1;
      jobs[j].nodes = 1;
    }
  }
  server.Submit(jobs);

  ClosedLoopOptions loop;
  loop.clients = 2;
  loop.jobs_per_client = 4;
  loop.think_seconds = 0.5;
  loop.mix = mix;
  loop.seed = args.seed + 1;
  server.AddClosedLoop(loop);

  auto report_or = server.Run();
  if (!report_or.ok()) {
    std::fprintf(stderr, "%s\n", report_or.status().ToString().c_str());
    return 1;
  }
  const ServiceReport& report = *report_or;

  PrintBanner("sort_server: " + args.system + ", " +
              std::to_string(args.jobs) + " open-loop jobs @ " +
              ReportTable::Num(args.rate, 1) + "/s + 2x4 closed-loop, " +
              args.policy);

  std::printf(
      "jobs      : %d done (%d recovered after retry), "
      "%d failed permanently, %d rejected\n",
      report.completed, report.recovered, report.failed, report.rejected);
  std::printf("makespan  : %s   throughput: %.2f Gkeys/s\n",
              FormatDuration(report.makespan).c_str(),
              report.aggregate_gkeys_per_sec);
  if (injector != nullptr) {
    const auto& faults = injector->stats();
    std::printf(
        "faults    : %d events fired, %lld copy errors injected, "
        "%d GPU(s) failed\n",
        faults.events_fired,
        static_cast<long long>(faults.copy_errors_injected),
        faults.gpus_failed);

    ReportTable resilience("sort_server: resilience",
                           {"recovered", "failed permanently", "retries",
                            "MTTR [s]", "HET fallbacks"});
    resilience.AddRow({std::to_string(report.recovered),
                       std::to_string(report.failed),
                       std::to_string(report.total_retries),
                       ReportTable::Num(report.mttr_seconds, 3),
                       std::to_string(report.het_fallbacks)});
    resilience.Emit();
  }
  if (report.slo_attainment >= 0) {
    std::printf("SLO       : %.0f%% of jobs within %s\n",
                100 * report.slo_attainment,
                FormatDuration(args.slo).c_str());
  }

  ReportTable latencies("sort_server: latency distributions [s]",
                        {"metric", "p50", "p95", "p99", "p99.9", "mean",
                         "max"});
  const auto row = [](const char* name, const LatencySummary& s) {
    return std::vector<std::string>{name, ReportTable::Num(s.p50, 3),
                                    ReportTable::Num(s.p95, 3),
                                    ReportTable::Num(s.p99, 3),
                                    ReportTable::Num(s.p999, 3),
                                    ReportTable::Num(s.mean, 3),
                                    ReportTable::Num(s.max, 3)};
  };
  latencies.AddRow(row("latency", report.latency));
  latencies.AddRow(row("queue delay", report.queue_delay));
  latencies.AddRow(row("service time", report.service_time));
  latencies.Emit();

  ReportTable links("sort_server: busiest links",
                    {"link", "mean utilization [%]"});
  for (std::size_t i = 0; i < report.links.size() && i < 8; ++i) {
    links.AddRow({report.links[i].name,
                  ReportTable::Num(100 * report.links[i].utilization, 1)});
  }
  links.Emit();

  if (!args.metrics_path.empty()) {
    CheckOk(obs::WriteMetricsFile(registry, args.metrics_path));
    std::printf("metrics   : %s (%zu families)\n", args.metrics_path.c_str(),
                registry.families().size());
  }
  if (!args.trace_path.empty()) {
    CheckOk(trace.WriteChromeTrace(args.trace_path));
    std::printf("trace     : %s (%zu spans; open in ui.perfetto.dev)\n",
                args.trace_path.c_str(), trace.size());
  }
  return report.failed == 0 ? 0 : 1;
}
