// Out-of-core sorting: 240 GB (60e9 int32 keys) on a simulated DGX A100 —
// far beyond the 8 x 40 GB of combined GPU memory. HET sort streams chunk
// groups through the GPUs and multiway-merges on the CPU (Section 6.2).
// Compares the 2n and 3n buffer schemes and eager merging, then reruns the
// 2n scheme with the NVMe spill tier: sorted runs are written to a
// simulated per-socket NVMe drive (link `nvme0`) instead of being held in
// host memory — the storage-bound third regime beyond in-core and
// in-host-memory sorting.

#include <cstdio>

#include "core/api.h"
#include "topo/systems.h"
#include "util/datagen.h"
#include "util/units.h"
#include "vgpu/platform.h"

using namespace mgs;

namespace {

core::SortStats RunVariant(core::BufferScheme scheme, bool eager,
                           core::SpillMode spill) {
  vgpu::PlatformOptions options;
  options.scale = 60'000.0;  // 60e9 logical keys over 1e6 actual
  auto topology = topo::MakeDgxA100();
  if (spill != core::SpillMode::kOff) {
    // PCIe 4.0 x4 NVMe-class drive: 7 GB/s read, 5 GB/s write. Attached
    // before Compile so the `nvme0` link is a first-class flow resource.
    CheckOk(topology->AttachNvme(0, 7.0 * kGB, 5.0 * kGB));
  }
  auto platform =
      CheckOk(vgpu::Platform::Create(std::move(topology), options));
  DataGenOptions gen;
  auto keys = GenerateKeys<std::int32_t>(1'000'000, gen);
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));

  core::HetOptions het;
  het.scheme = scheme;
  het.eager_merge = eager;
  het.gpu_memory_budget = 33e9;  // the paper's per-GPU budget
  het.spill = spill;
  auto stats = CheckOk(core::HetSort(platform.get(), &data, het));
  CheckOk(std::is_sorted(data.vector().begin(), data.vector().end())
              ? Status::OK()
              : Status::Internal("output not sorted"));
  return stats;
}

}  // namespace

int main() {
  std::printf("Sorting 60e9 int32 keys (240 GB) on a DGX A100 (8 GPUs)\n\n");
  std::printf("%-10s %-7s %-7s %-12s %-8s %-10s %-12s\n", "scheme", "eager",
              "spill", "total", "groups", "final k", "spilled");
  for (auto scheme : {core::BufferScheme::k3n, core::BufferScheme::k2n}) {
    for (bool eager : {false, true}) {
      const auto stats = RunVariant(scheme, eager, core::SpillMode::kOff);
      std::printf("%-10s %-7s %-7s %-12s %-8d %-10d %-12s\n",
                  core::BufferSchemeToString(scheme), eager ? "yes" : "no",
                  "no", FormatDuration(stats.total_seconds).c_str(),
                  stats.chunk_groups, stats.final_merge_sublists, "-");
    }
  }
  // The spill variant: same 2n streaming scheme, but every sorted run is
  // staged out to NVMe and read back for the final merge, as it would be
  // when the working set exceeds host memory too.
  const auto spilled =
      RunVariant(core::BufferScheme::k2n, false, core::SpillMode::kAuto);
  std::printf("%-10s %-7s %-7s %-12s %-8d %-10d %-12s\n",
              core::BufferSchemeToString(core::BufferScheme::k2n), "no",
              "nvme0", FormatDuration(spilled.total_seconds).c_str(),
              spilled.chunk_groups, spilled.final_merge_sublists,
              FormatBytes(spilled.spilled_bytes).c_str());
  std::printf(
      "\nTakeaways (Section 6.2): 2n and 3n sort equally fast without\n"
      "eager merging; eager merging loses because the CPU merge competes\n"
      "with the bidirectional transfers for host memory bandwidth. The\n"
      "NVMe spill run shows the storage-bound regime: run write-out and\n"
      "read-back at drive speed (%s spilled in %d runs, %s of spill time)\n"
      "dominates once data no longer fits in host memory either.\n",
      FormatBytes(spilled.spilled_bytes).c_str(), spilled.spilled_runs,
      FormatDuration(spilled.phases.spill).c_str());
  return 0;
}
