// Out-of-core sorting: 240 GB (60e9 int32 keys) on a simulated DGX A100 —
// far beyond the 8 x 40 GB of combined GPU memory. HET sort streams chunk
// groups through the GPUs and multiway-merges on the CPU (Section 6.2).
// Compares the 2n and 3n buffer schemes and eager merging.

#include <cstdio>

#include "core/api.h"
#include "topo/systems.h"
#include "util/datagen.h"
#include "util/units.h"
#include "vgpu/platform.h"

using namespace mgs;

namespace {

core::SortStats RunVariant(core::BufferScheme scheme, bool eager) {
  vgpu::PlatformOptions options;
  options.scale = 60'000.0;  // 60e9 logical keys over 1e6 actual
  auto platform =
      CheckOk(vgpu::Platform::Create(topo::MakeDgxA100(), options));
  DataGenOptions gen;
  auto keys = GenerateKeys<std::int32_t>(1'000'000, gen);
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));

  core::HetOptions het;
  het.scheme = scheme;
  het.eager_merge = eager;
  het.gpu_memory_budget = 33e9;  // the paper's per-GPU budget
  auto stats = CheckOk(core::HetSort(platform.get(), &data, het));
  CheckOk(std::is_sorted(data.vector().begin(), data.vector().end())
              ? Status::OK()
              : Status::Internal("output not sorted"));
  return stats;
}

}  // namespace

int main() {
  std::printf("Sorting 60e9 int32 keys (240 GB) on a DGX A100 (8 GPUs)\n\n");
  std::printf("%-10s %-7s %-12s %-8s %-10s\n", "scheme", "eager", "total",
              "groups", "final k");
  for (auto scheme : {core::BufferScheme::k3n, core::BufferScheme::k2n}) {
    for (bool eager : {false, true}) {
      const auto stats = RunVariant(scheme, eager);
      std::printf("%-10s %-7s %-12s %-8d %-10d\n",
                  core::BufferSchemeToString(scheme), eager ? "yes" : "no",
                  FormatDuration(stats.total_seconds).c_str(),
                  stats.chunk_groups, stats.final_merge_sublists);
    }
  }
  std::printf(
      "\nTakeaways (Section 6.2): 2n and 3n sort equally fast without\n"
      "eager merging; eager merging loses because the CPU merge competes\n"
      "with the bidirectional transfers for host memory bandwidth.\n");
  return 0;
}
