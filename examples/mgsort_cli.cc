// mgsort_cli — run any single sorting experiment from the command line.
//
//   mgsort_cli --system=dgx-a100 --algo=p2p --gpus=4 --keys=4e9
//              --dist=uniform --type=int32 [--trace=out.json]
//              [--explain] [--metrics-out=metrics.prom]
//
// Algorithms: p2p | het2n | het3n | het2n-eager | het3n-eager | hyb | cpu
// | rdx | dist. Prints the phase breakdown and writes an optional chrome
// trace. --algo=dist sorts across a multi-node cluster (--nodes node
// systems of --system joined by a leaf/spine RDMA fabric, --oversub
// cross-rack oversubscription; src/net); --nodes > 1 with any other
// algorithm runs it on the cluster topology instead of a single machine.
// --explain prints a bottleneck-attribution report (top saturated links,
// transfer- vs compute-bound phases, per-GPU busy fractions);
// --metrics-out snapshots the registry (.prom / .json / .csv by extension).
// --exec=graph runs p2p/het through the task-graph executor (src/exec)
// instead of phase barriers; with --explain it also prints the executor's
// critical path (the dependency chain that set the makespan).
//
// Key shapes beyond numerics: --keys=string sorts variable-length string
// keys (core::StringKey, 8-byte normalized prefixes; --count sets how
// many), --keys=record sorts multi-column records (core::SortRecord,
// composed ORDER BY (a, b) normalized keys). --spill=auto|force routes the
// HET sorter's runs through a simulated per-socket NVMe device (attached as
// link `nvme0`) when the working set exceeds the granted device buffers —
// the out-of-core tier (docs/keys.md).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "benchsuite/suite.h"
#include "exec/executor.h"
#include "fault/injector.h"
#include "fault/scenario.h"
#include "core/het_sort.h"
#include "core/hybrid_sort.h"
#include "core/keygen.h"
#include "core/radix_partition_sort.h"
#include "core/record.h"
#include "core/string_key.h"
#include "net/distributed_sort.h"
#include "obs/explain.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "sim/trace.h"
#include "util/units.h"

using namespace mgs;

namespace {

struct Args {
  std::string system = "dgx-a100";
  std::string algo = "p2p";
  int gpus = 0;  // 0 = all
  double keys = 2e9;
  KeyKind key_kind = KeyKind::kNumeric;
  core::SpillMode spill = core::SpillMode::kOff;
  std::string dist = "uniform";
  std::string type = "int32";
  std::uint64_t seed = 42;
  int nodes = 1;        // > 1 (or --algo=dist): multi-node cluster
  int rack_size = 2;    // nodes per rack
  double oversub = 1.0; // cross-rack oversubscription factor
  std::string trace_path;
  std::string metrics_path;
  std::string fault_plan;  // inline scenario, @file, or file path
  core::ExecMode exec_mode = core::ExecMode::kPhased;
  bool explain = false;
  bool multihop = false;
};

void Usage() {
  std::printf(
      "usage: mgsort_cli [--system=ac922|delta-d22x|dgx-a100]\n"
      "                  [--algo=p2p|het2n|het3n|het2n-eager|het3n-eager|"
      "hyb|cpu|rdx|dist]\n"
      "                  [--gpus=N] [--keys=4e9|string|record] [--count=4e9]\n"
      "                  [--spill=off|auto|force]\n"
      "                  [--nodes=N] [--rack-size=N] [--oversub=F]\n"
      "                  [--dist=uniform|normal|sorted|reverse-sorted|"
      "nearly-sorted|zipf]\n"
      "                  [--type=int32|int64|float32|float64]\n"
      "                  [--seed=N] [--multihop] [--exec=phase|graph]\n"
      "                  [--trace=out.json]\n"
      "                  [--explain] [--metrics-out=metrics.prom|.json|.csv]\n"
      "                  [--fault-plan='at=0.5 gpu=1 fail; ...'|@plan.json]"
      "\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

Result<Args> Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--system", &value)) {
      args.system = value;
    } else if (ParseFlag(argv[i], "--algo", &value)) {
      args.algo = value;
    } else if (ParseFlag(argv[i], "--gpus", &value)) {
      args.gpus = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--keys", &value)) {
      // --keys doubles as the key-shape selector: a key kind name switches
      // shape (size then comes from --count), a number is a count, and
      // anything else is a typo, not a zero-key numeric sort.
      if (auto kind = KeyKindFromString(value); kind.ok()) {
        args.key_kind = *kind;
      } else {
        char* end = nullptr;
        const double keys = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' || keys <= 0) {
          return Status::Invalid("--keys expects numeric|string|record or a "
                                 "positive count, got: " + value);
        }
        args.keys = keys;
      }
    } else if (ParseFlag(argv[i], "--count", &value)) {
      args.keys = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--spill", &value)) {
      if (value == "off") {
        args.spill = core::SpillMode::kOff;
      } else if (value == "auto") {
        args.spill = core::SpillMode::kAuto;
      } else if (value == "force") {
        args.spill = core::SpillMode::kForce;
      } else {
        return Status::Invalid("unknown spill mode: " + value);
      }
    } else if (ParseFlag(argv[i], "--dist", &value)) {
      args.dist = value;
    } else if (ParseFlag(argv[i], "--type", &value)) {
      args.type = value;
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      args.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--nodes", &value)) {
      args.nodes = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--rack-size", &value)) {
      args.rack_size = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--oversub", &value)) {
      args.oversub = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--fault-plan", &value)) {
      args.fault_plan = value;
    } else if (ParseFlag(argv[i], "--exec", &value)) {
      if (value == "graph") {
        args.exec_mode = core::ExecMode::kGraph;
      } else if (value == "phase") {
        args.exec_mode = core::ExecMode::kPhased;
      } else {
        return Status::Invalid("unknown exec mode: " + value);
      }
    } else if (ParseFlag(argv[i], "--trace", &value)) {
      args.trace_path = value;
    } else if (ParseFlag(argv[i], "--metrics-out", &value)) {
      args.metrics_path = value;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      args.explain = true;
    } else if (std::strcmp(argv[i], "--multihop") == 0) {
      args.multihop = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      std::exit(0);
    } else {
      return Status::Invalid(std::string("unknown flag: ") + argv[i]);
    }
  }
  return args;
}

Result<DataType> ParseType(const std::string& name) {
  if (name == "int32") return DataType::kInt32;
  if (name == "int64") return DataType::kInt64;
  if (name == "float32") return DataType::kFloat32;
  if (name == "float64") return DataType::kFloat64;
  return Status::Invalid("unknown type: " + name);
}

/// Key materialization per element type. The arena parameter is only used
/// by the StringKey specialization; numeric and record keys ignore it.
template <typename T>
struct KeyMaker {
  static std::vector<T> Make(std::int64_t n, const DataGenOptions& gen,
                             core::StringArena*) {
    return GenerateKeys<T>(n, gen);
  }
};

template <>
struct KeyMaker<core::StringKey> {
  static std::vector<core::StringKey> Make(std::int64_t n,
                                           const DataGenOptions& gen,
                                           core::StringArena* arena) {
    return core::GenerateStringKeys(n, gen, arena);
  }
};

template <>
struct KeyMaker<core::SortRecord> {
  static std::vector<core::SortRecord> Make(std::int64_t n,
                                            const DataGenOptions& gen,
                                            core::StringArena*) {
    return core::GenerateRecords(n, gen);
  }
};

template <typename T>
Result<core::SortStats> RunExperiment(const Args& args,
                                      sim::TraceRecorder* trace,
                                      obs::MetricsRegistry* metrics,
                                      exec::ExecReport* exec_report) {
  constexpr bool kNumericKeys = std::is_arithmetic_v<T>;
  if (args.spill != core::SpillMode::kOff && args.algo.rfind("het", 0) != 0) {
    return Status::Invalid(
        "--spill requires a het* algorithm (only the large-data via-host "
        "scheme has an out-of-core variant)");
  }
  const std::int64_t logical = static_cast<std::int64_t>(args.keys);
  const std::int64_t actual =
      std::max<std::int64_t>(1, std::min(logical, bench::ActualKeyCap()));
  vgpu::PlatformOptions popts;
  popts.scale =
      std::max(1.0, static_cast<double>(logical) / static_cast<double>(actual));
  std::unique_ptr<topo::Topology> topology;
  net::ClusterInfo cluster_info;
  if (args.algo == "dist" || args.nodes > 1) {
    net::ClusterOptions copt;
    copt.node_system = args.system;
    copt.nodes = std::max(1, args.nodes);
    copt.nodes_per_rack = args.rack_size;
    copt.oversubscription = args.oversub;
    MGS_ASSIGN_OR_RETURN(auto cluster, net::BuildCluster(copt));
    topology = std::move(cluster.topology);
    cluster_info = cluster.info;
  } else {
    MGS_ASSIGN_OR_RETURN(topology, topo::MakeSystem(args.system));
  }
  topology->SetMultihopP2p(args.multihop);
  if (args.spill != core::SpillMode::kOff) {
    // NVMe-class device on socket 0: 7 GB/s read, 5 GB/s write (PCIe 4.0
    // x4 drive). Attached pre-compile so the `nvme0` link gets a flow
    // resource (explain/metrics/fault-addressable like any other link).
    MGS_RETURN_IF_ERROR(
        topology->AttachNvme(0, 7.0 * kGB, 5.0 * kGB).status());
  }
  MGS_ASSIGN_OR_RETURN(auto platform,
                       vgpu::Platform::Create(std::move(topology), popts));
  platform->SetTrace(trace);
  platform->SetMetrics(metrics);

  std::unique_ptr<fault::FaultInjector> injector;
  if (!args.fault_plan.empty()) {
    MGS_ASSIGN_OR_RETURN(auto scenario,
                         fault::FaultScenario::Load(args.fault_plan));
    injector = std::make_unique<fault::FaultInjector>(
        platform.get(), std::move(scenario), args.seed);
    MGS_RETURN_IF_ERROR(injector->Arm());
  }

  DataGenOptions gen;
  gen.seed = args.seed;
  MGS_ASSIGN_OR_RETURN(gen.distribution, DistributionFromString(args.dist));
  core::StringArena arena;
  vgpu::HostBuffer<T> data(KeyMaker<T>::Make(actual, gen, &arena));
  const int gpus =
      args.gpus > 0 ? args.gpus : platform->num_devices();

  core::SortStats stats;
  if (args.algo == "dist") {
    if constexpr (!kNumericKeys) {
      return Status::Invalid(
          "--algo=dist moves raw element bytes between nodes and supports "
          "numeric keys only (string keys are arena-backed)");
    } else {
      MGS_ASSIGN_OR_RETURN(
          stats, net::DistributedSort<T>(platform.get(), cluster_info, &data,
                                         net::DistSortOptions{}));
    }
  } else if (args.algo == "rdx" && !kNumericKeys) {
    return Status::Invalid(
        "--algo=rdx partitions on full radix digits and supports numeric "
        "keys only; use p2p, het*, hyb, or cpu for string/record keys");
  } else if (args.algo == "cpu") {
    MGS_ASSIGN_OR_RETURN(stats, core::CpuSortBaseline(platform.get(), &data));
  } else if (args.algo == "p2p") {
    core::SortOptions options;
    options.exec_mode = args.exec_mode;
    options.exec_report = exec_report;
    MGS_ASSIGN_OR_RETURN(options.gpu_set,
                         core::ChooseGpuSet(platform->topology(), gpus, true));
    MGS_ASSIGN_OR_RETURN(stats, core::P2pSort(platform.get(), &data, options));
  } else if (args.algo == "rdx") {
    if constexpr (!kNumericKeys) {
      return Status::Internal("unreachable: rdx gated above");
    } else {
      core::RadixPartitionOptions options;
      MGS_ASSIGN_OR_RETURN(
          options.gpu_set,
          core::ChooseGpuSet(platform->topology(), gpus, false));
      MGS_ASSIGN_OR_RETURN(
          stats, core::RadixPartitionSort(platform.get(), &data, options));
    }
  } else if (args.algo == "hyb") {
    core::HybridOptions options;
    MGS_ASSIGN_OR_RETURN(options.gpu_set,
                         core::ChooseGpuSet(platform->topology(), gpus, true));
    MGS_ASSIGN_OR_RETURN(stats,
                         core::HybridSort(platform.get(), &data, options));
  } else if (args.algo.rfind("het", 0) == 0) {
    core::HetOptions options;
    options.scheme = args.algo.find("3n") != std::string::npos
                         ? core::BufferScheme::k3n
                         : core::BufferScheme::k2n;
    options.eager_merge = args.algo.find("eager") != std::string::npos;
    options.exec_mode = args.exec_mode;
    options.exec_report = exec_report;
    options.spill = args.spill;
    MGS_ASSIGN_OR_RETURN(
        options.gpu_set,
        core::ChooseGpuSet(platform->topology(), gpus, false));
    MGS_ASSIGN_OR_RETURN(stats, core::HetSort(platform.get(), &data, options));
  } else {
    return Status::Invalid("unknown algorithm: " + args.algo);
  }

  if (!std::is_sorted(data.vector().begin(), data.vector().end())) {
    return Status::Internal("output is not sorted");
  }
  if (injector != nullptr) {
    const auto& faults = injector->stats();
    std::printf(
        "  faults: %d events fired, %lld transient copy errors injected, "
        "%d GPU(s) failed\n",
        faults.events_fired,
        static_cast<long long>(faults.copy_errors_injected),
        faults.gpus_failed);
  }
  obs::SyncFlowMetrics(&platform->network(), platform->topology(),
                       platform->simulator().Now(), metrics);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  auto args_or = Parse(argc, argv);
  if (!args_or.ok()) {
    std::fprintf(stderr, "%s\n", args_or.status().ToString().c_str());
    Usage();
    return 1;
  }
  const Args& args = *args_or;

  sim::TraceRecorder trace;
  sim::TraceRecorder* trace_ptr =
      args.trace_path.empty() ? nullptr : &trace;
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* metrics_ptr =
      (args.explain || !args.metrics_path.empty()) ? &registry : nullptr;

  auto type = ParseType(args.type);
  if (!type.ok()) {
    std::fprintf(stderr, "%s\n", type.status().ToString().c_str());
    return 1;
  }
  exec::ExecReport exec_report;
  Result<core::SortStats> stats = Status::Internal("unreachable");
  if (args.key_kind == KeyKind::kString) {
    stats = RunExperiment<core::StringKey>(args, trace_ptr, metrics_ptr,
                                           &exec_report);
  } else if (args.key_kind == KeyKind::kRecord) {
    stats = RunExperiment<core::SortRecord>(args, trace_ptr, metrics_ptr,
                                            &exec_report);
  } else {
    switch (*type) {
      case DataType::kInt32:
        stats = RunExperiment<std::int32_t>(args, trace_ptr, metrics_ptr,
                                            &exec_report);
        break;
      case DataType::kInt64:
        stats = RunExperiment<std::int64_t>(args, trace_ptr, metrics_ptr,
                                            &exec_report);
        break;
      case DataType::kFloat32:
        stats =
            RunExperiment<float>(args, trace_ptr, metrics_ptr, &exec_report);
        break;
      case DataType::kFloat64:
        stats =
            RunExperiment<double>(args, trace_ptr, metrics_ptr, &exec_report);
        break;
    }
  }
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }

  const char* shape = args.key_kind == KeyKind::kNumeric
                          ? args.type.c_str()
                          : KeyKindToString(args.key_kind);
  std::printf("%s on %s, %s of %s (%s)\n", stats->algorithm.c_str(),
              args.system.c_str(), FormatKeys(stats->keys).c_str(), shape,
              args.dist.c_str());
  std::printf("  total : %s (simulated)\n",
              FormatDuration(stats->total_seconds).c_str());
  std::printf("  HtoD  : %s\n", FormatDuration(stats->phases.htod).c_str());
  std::printf("  sort  : %s\n", FormatDuration(stats->phases.sort).c_str());
  std::printf("  merge : %s\n", FormatDuration(stats->phases.merge).c_str());
  std::printf("  DtoH  : %s\n", FormatDuration(stats->phases.dtoh).c_str());
  if (stats->spilled_bytes > 0) {
    std::printf("  spill : %s in %d runs via nvme%d (%s)\n",
                FormatBytes(stats->spilled_bytes).c_str(),
                stats->spilled_runs, stats->spill_nvme,
                FormatDuration(stats->phases.spill).c_str());
  }
  if (stats->p2p_bytes > 0) {
    std::printf("  P2P   : %s exchanged\n",
                FormatBytes(stats->p2p_bytes).c_str());
  }
  if (stats->nodes > 1) {
    std::printf("  nodes : %d (%d GPUs each)\n", stats->nodes,
                stats->num_gpus / stats->nodes);
    std::printf("  shuffle : %s between GPUs (%s crossing node NICs)\n",
                FormatBytes(stats->shuffle_bytes).c_str(),
                FormatBytes(stats->cross_node_bytes).c_str());
  }
  if (args.explain) {
    const obs::ExplainReport report = obs::BuildExplainReport(registry);
    std::printf("%s", obs::RenderExplainReport(report).c_str());
    if (!exec_report.nodes.empty()) {
      std::printf("%s", exec::RenderCriticalPath(exec_report).c_str());
    }
  }
  if (!args.metrics_path.empty()) {
    CheckOk(obs::WriteMetricsFile(registry, args.metrics_path));
    std::printf("  metrics : %s\n", args.metrics_path.c_str());
  }
  if (trace_ptr) {
    CheckOk(trace.WriteChromeTrace(args.trace_path));
    std::printf("  trace : %s (%zu spans; open in ui.perfetto.dev)\n",
                args.trace_path.c_str(), trace.size());
  }
  return 0;
}
