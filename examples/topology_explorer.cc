// Topology explorer: dump each preset platform's interconnects, its
// CPU-GPU and P2P bandwidth characteristics, and the GPU sets the library
// would pick for sorting (Section 5.4).

#include <cstdio>

#include "core/gpu_set.h"
#include "topo/systems.h"
#include "topo/transfer_probe.h"
#include "util/units.h"

using namespace mgs;

int main() {
  for (const auto& name : topo::SystemNames()) {
    topo::TransferProbe probe(CheckOk(topo::MakeSystem(name)));
    const auto& topology = probe.topology();
    std::printf("==============================================\n");
    std::printf("%s\n", topology.Describe().c_str());

    // Parallel HtoD scaling: 1, 2, ..., all GPUs.
    std::printf("Parallel HtoD aggregate (4 GB per GPU, NUMA 0):\n");
    for (int g = 1; g <= topology.num_gpus(); g *= 2) {
      auto set = CheckOk(core::ChooseGpuSet(topology, g, false));
      std::vector<topo::TransferOp> ops;
      std::string label;
      for (int id : set) {
        ops.push_back(topo::TransferProbe::HtoD(id, 4 * kGB));
        label += std::to_string(id) + " ";
      }
      const auto result = CheckOk(probe.Run(ops));
      std::printf("  %d GPU(s) [%s]: %s\n", g, label.c_str(),
                  FormatThroughput(result.aggregate_throughput).c_str());
    }

    // Best P2P-ordered sets.
    std::printf("P2P-sort GPU sets (ordered for the merge phase):\n");
    for (int g = 2; g <= topology.num_gpus(); g *= 2) {
      auto set = CheckOk(core::ChooseGpuSet(topology, g, true));
      std::string label;
      for (int id : set) label += std::to_string(id) + " ";
      const double cost = CheckOk(core::P2pOrderCost(topology, set));
      std::printf("  g=%d: [%s] (merge cost %.3g s/GB)\n", g, label.c_str(),
                  cost * kGB);
    }
    std::printf("\n");
  }
  return 0;
}
