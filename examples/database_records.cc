// Database scenario: the workloads the paper's introduction motivates —
// index creation, duplicate detection, and a merge join — built on
// multi-GPU sorting of key/rowid records.

#include <cstdio>

#include "core/api.h"
#include "core/record.h"
#include "topo/systems.h"
#include "util/datagen.h"
#include "util/units.h"
#include "vgpu/platform.h"

using namespace mgs;
using core::IndexEntry32;

namespace {

std::vector<IndexEntry32> MakeRelation(std::int64_t rows,
                                       std::uint64_t seed,
                                       Distribution dist) {
  DataGenOptions opt;
  opt.distribution = dist;
  opt.seed = seed;
  auto keys = GenerateKeys<std::int32_t>(rows, opt);
  std::vector<IndexEntry32> relation(static_cast<std::size_t>(rows));
  for (std::int64_t i = 0; i < rows; ++i) {
    relation[static_cast<std::size_t>(i)] = {
        keys[static_cast<std::size_t>(i)], static_cast<std::uint32_t>(i)};
  }
  return relation;
}

// Sorts a relation (key, rowid) on the simulated DGX A100 with P2P sort,
// i.e. builds the sort order for an index. Returns simulated seconds.
double BuildIndex(std::vector<IndexEntry32>* relation) {
  vgpu::PlatformOptions popts;
  popts.scale = 1000.0;  // rows below represent 1000x logical rows
  auto platform =
      CheckOk(vgpu::Platform::Create(topo::MakeDgxA100(), popts));
  vgpu::HostBuffer<IndexEntry32> data(std::move(*relation));
  core::SortOptions options;
  options.gpu_set =
      CheckOk(core::ChooseGpuSet(platform->topology(), 4, true));
  auto stats = CheckOk(core::P2pSort(platform.get(), &data, options));
  *relation = std::move(data.vector());
  return stats.total_seconds;
}

}  // namespace

int main() {
  const std::int64_t rows = 1'000'000;  // 1e9 logical rows at scale 1000

  // --- index creation ---------------------------------------------------
  auto orders = MakeRelation(rows, 1, Distribution::kUniform);
  const double index_time = BuildIndex(&orders);
  std::printf("Index creation: sorted %s logical (key, rowid) records in "
              "%s (simulated, 4x A100)\n",
              FormatKeys(rows * 1000).c_str(),
              FormatDuration(index_time).c_str());

  // --- duplicate detection over the sorted order -------------------------
  auto lineitems = MakeRelation(rows, 2, Distribution::kZipf);
  BuildIndex(&lineitems);
  std::int64_t duplicates = 0;
  for (std::size_t i = 1; i < lineitems.size(); ++i) {
    if (lineitems[i].key == lineitems[i - 1].key) ++duplicates;
  }
  std::printf("Duplicate detection (zipf keys): %lld duplicate keys found "
              "by a single sorted scan\n",
              static_cast<long long>(duplicates));

  // --- merge join ---------------------------------------------------------
  std::int64_t matches = 0;
  std::size_t i = 0, j = 0;
  while (i < orders.size() && j < lineitems.size()) {
    if (orders[i].key < lineitems[j].key) {
      ++i;
    } else if (lineitems[j].key < orders[i].key) {
      ++j;
    } else {
      // Count the cross product of the equal-key runs.
      std::size_t ri = i, rj = j;
      while (ri < orders.size() && orders[ri].key == orders[i].key) ++ri;
      while (rj < lineitems.size() && lineitems[rj].key == lineitems[j].key) {
        ++rj;
      }
      matches += static_cast<std::int64_t>((ri - i) * (rj - j));
      i = ri;
      j = rj;
    }
  }
  std::printf("Merge join over the two sorted relations: %lld matches\n",
              static_cast<long long>(matches));
  std::printf("\nBoth relations stayed sorted end to end: %s\n",
              std::is_sorted(orders.begin(), orders.end()) &&
                      std::is_sorted(lineitems.begin(), lineitems.end())
                  ? "yes"
                  : "NO");
  return 0;
}
